"""The HAL compiler pipeline: type lattice, constraint-based inference,
dependence analysis, dispatch-plan selection, static checking."""

from __future__ import annotations

import pytest

from repro import behavior, method
from repro.actors.behavior import behavior_of
from repro.errors import CompileError, TypeInferenceError
from repro.hal.compiler import compile_behaviors
from repro.hal.dependence import analyze_continuations, analyze_purity
from repro.hal.inference import infer_program
from repro.hal.types import (
    ANY,
    BOTTOM,
    GroupOf,
    MAX_WIDTH,
    RefOf,
    SCALAR,
    atom,
    is_bottom,
    join,
    join_all,
    ref_behaviors,
)


def compiled(*classes, strict=True):
    return compile_behaviors(
        {behavior_of(c).name: behavior_of(c) for c in classes}, strict=strict
    )


class TestTypeLattice:
    def test_join_basics(self):
        a, b = atom(RefOf("A")), atom(RefOf("B"))
        assert join(a, b) == frozenset({RefOf("A"), RefOf("B")})
        assert join(a, a) == a
        assert join(a, ANY) is ANY
        assert join(ANY, a) is ANY
        assert join(a, BOTTOM) == a

    def test_width_cap_collapses_to_any(self):
        vals = [atom(RefOf(f"B{i}")) for i in range(MAX_WIDTH + 1)]
        assert join_all(vals) is ANY

    def test_ref_behaviors(self):
        assert ref_behaviors(atom(RefOf("A"))) == frozenset({"A"})
        assert ref_behaviors(ANY) is None
        assert ref_behaviors(atom(SCALAR)) is None
        assert ref_behaviors(atom(GroupOf("A"))) is None
        assert ref_behaviors(BOTTOM) == frozenset()

    def test_is_bottom(self):
        assert is_bottom(BOTTOM)
        assert not is_bottom(ANY)
        assert not is_bottom(atom(SCALAR))


@behavior
class Leaf:
    def __init__(self):
        self.n = 0

    @method
    def poke(self, ctx, x):
        self.n += x

    @method
    def value(self, ctx):
        return self.n


@behavior
class Root:
    def __init__(self):
        self.kid = None

    @method
    def setup(self, ctx):
        self.kid = ctx.new(Leaf)

    @method
    def fwd(self, ctx, x):
        ctx.send(self.kid, "poke", x)

    @method
    def ask(self, ctx):
        v = yield ctx.request(self.kid, "value")
        return v


class TestInference:
    def test_new_assignment_types_attribute(self):
        result = infer_program({"Leaf": behavior_of(Leaf), "Root": behavior_of(Root)})
        sites = result.sites_of("Root", "fwd")
        assert len(sites) == 1
        assert sites[0].receivers == frozenset({"Leaf"})

    def test_request_return_type_flows_back(self):
        result = infer_program({"Leaf": behavior_of(Leaf), "Root": behavior_of(Root)})
        req_sites = [s for s in result.sites_of("Root", "ask") if s.is_request]
        assert req_sites and req_sites[0].receivers == frozenset({"Leaf"})

    def test_me_reference_typed(self):
        @behavior
        class Selfish:
            def __init__(self):
                self.me2 = None

            @method
            def grab(self, ctx):
                self.me2 = ctx.me

            @method
            def loop(self, ctx):
                ctx.send(self.me2, "grab")

        result = infer_program({"Selfish": behavior_of(Selfish)})
        sites = result.sites_of("Selfish", "loop")
        assert sites[0].receivers == frozenset({"Selfish"})

    def test_param_flow_across_behaviors(self):
        @behavior
        class Producer:
            def __init__(self):
                pass

            @method
            def run(self, ctx, consumer):
                ctx.send(consumer, "take", ctx.new(Leaf))

        @behavior
        class Consumer:
            def __init__(self):
                pass

            @method
            def take(self, ctx, thing):
                ctx.send(thing, "poke", 1)

        @behavior
        class Wiring:
            def __init__(self):
                pass

            @method
            def go(self, ctx):
                p = ctx.new(Producer)
                c = ctx.new(Consumer)
                ctx.send(p, "run", c)

        result = infer_program({
            n: behavior_of(c)
            for n, c in [("Leaf", Leaf), ("Producer", Producer),
                         ("Consumer", Consumer), ("Wiring", Wiring)]
        })
        # `thing` in Consumer.take was fed from Producer's arg flow.
        sites = result.sites_of("Consumer", "take")
        assert sites[0].receivers == frozenset({"Leaf"})

    def test_group_member_typed(self):
        @behavior
        class GroupUser:
            def __init__(self):
                self.g = None

            @method
            def setup(self, ctx):
                self.g = ctx.grpnew(Leaf, 8)

            @method
            def hit(self, ctx, i):
                ctx.send(self.g.member(i), "poke", 1)

        result = infer_program({
            "Leaf": behavior_of(Leaf), "GroupUser": behavior_of(GroupUser),
        })
        sites = result.sites_of("GroupUser", "hit")
        assert sites[0].receivers == frozenset({"Leaf"})

    def test_unknown_receiver_is_top(self):
        @behavior
        class Blind:
            def __init__(self):
                pass

            @method
            def go(self, ctx, mystery):
                ctx.send(mystery, "anything")

        result = infer_program({"Blind": behavior_of(Blind)})
        assert result.sites_of("Blind", "go")[0].receivers is None or \
            result.sites_of("Blind", "go")[0].receivers == frozenset()


class TestDependence:
    def test_continuation_plan_counts_joins(self):
        @behavior
        class Joiner:
            def __init__(self):
                pass

            @method
            def go(self, ctx, a, b):
                x = yield ctx.request(a, "value")
                y, z = yield [ctx.request(a, "value"), ctx.request(b, "value")]
                return x + y + z

        result = infer_program({"Joiner": behavior_of(Joiner)})
        plan = analyze_continuations(result.methods[("Joiner", "go")])
        assert plan.is_generator
        assert plan.split_points == 2
        assert [j.slots for j in plan.joins] == [1, 2]
        assert [j.grouped for j in plan.joins] == [False, True]

    def test_purity_detection(self):
        result = infer_program({"Leaf": behavior_of(Leaf), "Root": behavior_of(Root)})
        assert analyze_purity(result.methods[("Leaf", "poke")]).writes_state
        assert not analyze_purity(result.methods[("Root", "fwd")]).writes_state

    def test_container_mutation_counts_as_write(self):
        @behavior
        class Appender:
            def __init__(self):
                self.log = []

            @method
            def note(self, ctx, x):
                self.log.append(x)

        result = infer_program({"Appender": behavior_of(Appender)})
        assert analyze_purity(result.methods[("Appender", "note")]).writes_state

    def test_functional_behavior_detected(self):
        from repro.apps.fibonacci import FibActor
        cp = compiled(FibActor)
        assert cp.behaviors["FibActor"].functional

    def test_yield_from_rejected(self):
        @behavior
        class YF:
            def __init__(self):
                pass

            @method
            def go(self, ctx, a):
                yield from [ctx.request(a, "x")]

        with pytest.raises(CompileError, match="yield from"):
            compiled(YF)


class TestPlans:
    def test_static_plan_for_unique_type(self):
        cp = compiled(Leaf, Root)
        assert cp.behaviors["Root"].plan_for("fwd", "poke") == "static"
        assert cp.static_site_count() >= 1

    def test_generic_plan_when_unknown(self):
        cp = compiled(Leaf, Root)
        assert cp.behaviors["Root"].plan_for("nonexistent", "poke") == "generic"

    def test_lookup_plan_for_union(self):
        @behavior
        class A1:
            def __init__(self):
                pass

            @method
            def hit(self, ctx):
                pass

        @behavior
        class A2:
            def __init__(self):
                pass

            @method
            def hit(self, ctx):
                pass

        @behavior
        class Chooser:
            def __init__(self):
                self.t = None

            @method
            def pick(self, ctx, which):
                self.t = ctx.new(A1) if which else ctx.new(A2)

            @method
            def go(self, ctx):
                ctx.send(self.t, "hit")

        cp = compiled(A1, A2, Chooser)
        assert cp.behaviors["Chooser"].plan_for("go", "hit") == "lookup"

    def test_static_type_error_detected(self):
        @behavior
        class Oops:
            def __init__(self):
                self.kid = None

            @method
            def setup(self, ctx):
                self.kid = ctx.new(Leaf)

            @method
            def bad(self, ctx):
                ctx.send(self.kid, "no_such_method")

        with pytest.raises(TypeInferenceError, match="no such method"):
            compiled(Leaf, Oops)
        # non-strict mode demotes to a warning + generic plan
        cp = compiled(Leaf, Oops, strict=False)
        assert cp.behaviors["Oops"].plan_for("bad", "no_such_method") == "generic"
        assert any("warning" in d for d in cp.diagnostics)

    def test_become_demotes_static_to_lookup(self):
        @behavior
        class Shifty:
            def __init__(self):
                pass

            @method
            def hit(self, ctx):
                ctx.become(Leaf)

        @behavior
        class Caller:
            def __init__(self):
                self.t = None

            @method
            def setup(self, ctx):
                self.t = ctx.new(Shifty)

            @method
            def go(self, ctx):
                ctx.send(self.t, "hit")

        cp = compiled(Leaf, Shifty, Caller)
        assert cp.behaviors["Caller"].plan_for("go", "hit") == "lookup"
        plan = cp.behaviors["Caller"].plans.plans[("go", "hit")]
        assert "become" in plan.reason

    def test_plan_for_falls_back_to_generic_on_unanalyzed_sites(self):
        cp = compiled(Leaf, Root)
        # Selectors the analysis never planned (runtime-composed sends,
        # external drivers) take the generic mailbox path.
        assert cp.behaviors["Root"].plan_for("fwd", "never_planned") == "generic"
        assert cp.behaviors["Leaf"].plan_for("poke", "poke") == "generic"

    def test_report_renders(self):
        cp = compiled(Leaf, Root)
        text = cp.report()
        assert "behaviour Root" in text
        assert "static" in text
        assert "continuation split" in text

    def test_report_golden(self):
        import re

        cp = compiled(Leaf, Root)
        text = re.sub(r"@\d+", "@L", cp.report())
        assert text == (
            "=== HAL compilation report: <adhoc> ===\n"
            "behaviour Leaf\n"
            "behaviour Root\n"
            "  ask: send 'value' -> static  (unique receiver type Leaf)\n"
            "  fwd: send 'poke' -> static  (unique receiver type Leaf)\n"
            "  ask: 1 continuation split(s) [1@L] (generator)\n"
            "plans: 2 static / 0 lookup / 0 generic"
        )

    def test_report_dict_structure(self):
        from repro.apps.fibonacci import FibActor

        cp = compiled(FibActor)
        d = cp.report_dict()
        fa = d["behaviors"]["FibActor"]
        assert fa["lowered_methods"] == ["compute"]
        assert fa["plans"][0]["kind"] == "static"
        cont = fa["continuations"][0]
        assert cont["frontend"] == "lowered"
        assert cont["joins"][0]["slots"] == 2
        assert cont["joins"][0]["grouped"] is True
        assert d["plan_counts"]["static"] == 1
