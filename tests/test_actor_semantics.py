"""Actor-model semantic laws (§2.1) the runtime must uphold:
atomic message processing, become visibility, per-sender ordering,
fairness, and reply-exactly-once — plus the reporting helpers."""

from __future__ import annotations

import pytest

from repro import HalRuntime, RuntimeConfig, behavior, method
from repro.reporting import fmt_ms, fmt_s, fmt_us, render_table
from tests.conftest import Counter, make_runtime


class TestAtomicity:
    def test_message_processing_is_atomic(self, rt4):
        """No other message of the same actor interleaves mid-method."""
        @behavior
        class Atomic:
            def __init__(self):
                self.inside = False
                self.violations = 0
                self.runs = 0

            @method
            def work(self, ctx):
                if self.inside:
                    self.violations += 1
                self.inside = True
                ctx.charge(50.0)
                self.runs += 1
                self.inside = False

        rt4.load_behaviors(Atomic)
        ref = rt4.spawn(Atomic, at=0)
        for src in range(4):
            for _ in range(5):
                rt4.send(ref, "work", from_node=src)
        rt4.run()
        state = rt4.state_of(ref)
        assert state.runs == 20
        assert state.violations == 0

    def test_per_sender_order_preserved(self, rt4):
        @behavior
        class Recorder:
            def __init__(self):
                self.seen = []

            @method
            def note(self, ctx, sender, seq):
                self.seen.append((sender, seq))

        rt4.load_behaviors(Recorder)
        ref = rt4.spawn(Recorder, at=2)
        for seq in range(8):
            for src in range(4):
                rt4.send(ref, "note", src, seq, from_node=src)
        rt4.run()
        seen = rt4.state_of(ref).seen
        assert len(seen) == 32
        for src in range(4):
            seqs = [q for s, q in seen if s == src]
            assert seqs == sorted(seqs), f"sender {src} reordered"


class TestBecomeVisibility:
    def test_become_applies_before_next_message(self, rt4):
        @behavior
        class Phase1:
            def __init__(self):
                self.log = []

            @method
            def step(self, ctx):
                self.log.append(1)
                ctx.become(Phase2, self.log)

        @behavior
        class Phase2:
            def __init__(self, log):
                self.log = log

            @method
            def step(self, ctx):
                self.log.append(2)

        rt4.load_behaviors(Phase1, Phase2)
        ref = rt4.spawn(Phase1, at=0)
        # both messages queued before the first is processed
        rt4.send(ref, "step")
        rt4.send(ref, "step")
        rt4.send(ref, "step")
        rt4.run()
        assert rt4.state_of(ref).log == [1, 2, 2]


class TestFairness:
    def test_no_actor_starves_under_load(self, rt4):
        """A self-perpetuating actor cannot starve its node peers."""
        @behavior
        class Selfish:
            def __init__(self):
                self.rounds = 0

            @method
            def spin(self, ctx):
                self.rounds += 1
                if self.rounds < 50:
                    ctx.send(ctx.me, "spin")

        rt4.load_behaviors(Selfish)
        spinner = rt4.spawn(Selfish, at=0)
        peer = rt4.spawn(Counter, at=0)
        rt4.send(spinner, "spin")
        rt4.send(peer, "incr")
        # run only a bounded window: the peer must have run long
        # before the spinner finishes its 50 rounds
        rt4.run(stop_when=lambda: rt4.state_of(peer).value == 1)
        assert rt4.state_of(peer).value == 1
        assert rt4.state_of(spinner).rounds < 50
        rt4.run()
        assert rt4.state_of(spinner).rounds == 50


class TestReplyDiscipline:
    def test_each_request_gets_exactly_one_reply(self, rt4):
        from tests.conftest import EchoServer
        server = rt4.spawn(EchoServer, at=1)
        values = [rt4.call(server, "echo", i) for i in range(10)]
        assert values == list(range(10))
        # no stray continuations left behind
        assert all(k.continuations.outstanding == 0 for k in rt4.kernels)

    def test_dynamic_request_list(self, rt4):
        """Yielding a *variable* holding requests works (dynamic join,
        validated at runtime rather than compile time)."""
        from tests.conftest import EchoServer

        @behavior
        class DynFan:
            def __init__(self):
                pass

            @method
            def go(self, ctx, servers):
                reqs = [ctx.request(s, "echo", i) for i, s in enumerate(servers)]
                values = yield reqs
                return sum(values)

        rt4.load_behaviors(DynFan)
        servers = [rt4.spawn(EchoServer, at=i) for i in range(4)]
        fan = rt4.spawn(DynFan, at=0)
        assert rt4.call(fan, "go", servers) == 0 + 1 + 2 + 3


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table("T", ["a", "bb"], [("x", 1), ("yyy", 22)])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1] == "="
        assert "yyy" in lines[-1]

    def test_render_table_empty_rows(self):
        text = render_table("T", ["col"], [])
        assert "col" in text

    def test_note_appended(self):
        text = render_table("T", ["c"], [("v",)], note="hello")
        assert text.endswith("hello")

    def test_formatters(self):
        assert fmt_us(1.234) == "1.23"
        assert fmt_ms(1500.0) == "1.50"
        assert fmt_s(2_500_000.0) == "2.500"
