"""Unit tests for the reliable AM sublayer: ack round trips, retransmit
on drop, duplicate absorption, retry exhaustion, expendable sends."""

from __future__ import annotations

import pytest

from repro import (
    FaultPlan,
    FaultRule,
    HalRuntime,
    ReliabilityParams,
    RuntimeConfig,
    check_invariants,
)
from repro.errors import HandlerError, ReliabilityError
from tests.conftest import Counter


def make_rt(*, faults=None, reliability=None, num_nodes=4):
    cfg_kwargs = {"num_nodes": num_nodes}
    if reliability is not None:
        cfg_kwargs["reliability"] = reliability
    rt = HalRuntime(RuntimeConfig(**cfg_kwargs), faults=faults)
    rt.load_behaviors(Counter)
    return rt


class TestAttachment:
    def test_fault_free_machine_has_no_transport(self):
        rt = make_rt()
        assert all(k.reliable is None for k in rt.kernels)
        assert all(k.endpoint._rel is None for k in rt.kernels)

    def test_faulty_machine_attaches_transport(self):
        rt = make_rt(faults=FaultPlan.protocol_chaos(drop=0.01))
        assert all(k.reliable is not None for k in rt.kernels)

    def test_config_can_force_transport_on(self):
        rt = make_rt(reliability=ReliabilityParams(enabled=True))
        assert all(k.reliable is not None for k in rt.kernels)

    def test_config_can_force_transport_off(self):
        rt = make_rt(faults=FaultPlan.protocol_chaos(drop=0.01),
                     reliability=ReliabilityParams(enabled=False))
        assert all(k.reliable is None for k in rt.kernels)

    def test_empty_plan_degrades_to_fault_free(self):
        rt = make_rt(faults=FaultPlan())
        assert rt.machine.faults is None
        assert all(k.reliable is None for k in rt.kernels)


class TestEnvelopeProtocol:
    def test_clean_round_trip_acks_everything(self):
        rt = make_rt(reliability=ReliabilityParams(enabled=True))
        ref = rt.spawn(Counter, at=1)
        for _ in range(5):
            rt.send(ref, "incr", from_node=0)
        rt.run()
        assert rt.call(ref, "get", from_node=0) == 5
        rt.run()  # drain the final reply's ack
        stats = rt.stats
        assert stats.counter("rel.envelopes") > 0
        assert stats.counter("rel.acks") == stats.counter("rel.envelopes")
        assert stats.counter("rel.retries") == 0
        assert all(k.reliable.pending_count == 0 for k in rt.kernels)

    def test_dropped_packet_is_retransmitted(self):
        plan = FaultPlan(by_kind={"deliver_keyed": FaultRule(drop_count=1)})
        rt = make_rt(faults=plan)
        ref = rt.spawn(Counter, at=1)
        rt.send(ref, "incr", from_node=0)
        rt.run()
        assert rt.call(ref, "get", from_node=0) == 1
        assert rt.stats.counter("faults.dropped_packets") == 1
        assert rt.stats.counter("rel.retries") >= 1
        check_invariants(rt)

    def test_duplicate_packet_dispatched_once(self):
        plan = FaultPlan(by_kind={"deliver_keyed": FaultRule(duplicate=1.0)},
                         seed=1)
        rt = make_rt(faults=plan)
        ref = rt.spawn(Counter, at=1)
        for _ in range(4):
            rt.send(ref, "incr", from_node=0)
        rt.run()
        # Every wire packet arrived twice; every handler ran once.
        assert rt.call(ref, "get", from_node=0) == 4
        assert rt.stats.counter("rel.dup_absorbed") >= 4
        check_invariants(rt)

    def test_partitioned_peer_fails_loudly(self):
        # Drop literally every deliver_keyed packet: retransmits can
        # never get through and the retry budget must trip.
        plan = FaultPlan(by_kind={"deliver_keyed": FaultRule(drop=1.0)})
        rt = make_rt(
            faults=plan,
            reliability=ReliabilityParams(max_retries=3),
        )
        ref = rt.spawn(Counter, at=1)
        rt.send(ref, "incr", from_node=0)
        with pytest.raises(ReliabilityError, match="unreachable"):
            rt.run()
        assert rt.stats.counter("rel.retries") == 3

    def test_expendable_requires_idempotent_handler(self):
        rt = make_rt(reliability=ReliabilityParams(enabled=True))
        kernel = rt.kernels[0]
        with pytest.raises(HandlerError, match="non-idempotent"):
            kernel.node.bootstrap(
                lambda: kernel.endpoint.send(
                    1, "reply", (0, 0, None), expendable=True
                )
            )

    def test_expendable_send_skips_envelope(self):
        rt = make_rt(reliability=ReliabilityParams(enabled=True))
        kernel = rt.kernels[0]
        before = rt.stats.counter("rel.envelopes")
        kernel.node.bootstrap(
            lambda: kernel.endpoint.send(
                1, "cache_addr", (), expendable=True
            )
        )
        assert rt.stats.counter("rel.envelopes") == before
        assert rt.stats.counter("rel.expendable_sends") == 1


def _dedupe_entries(rel) -> int:
    """Total retained dedupe keys, across representations: the legacy
    unbounded ``(sender, seq)`` seen-set if present, else the windowed
    per-sender floors plus the out-of-order residue above them."""
    seen = getattr(rel, "_seen", None)
    if seen is not None:
        return len(seen)
    return len(rel._floor) + rel.dedupe_residue


class TestDedupeWindow:
    def test_dedupe_table_bounded_under_sustained_traffic(self):
        """Regression: the dedupe table used to retain one key per
        envelope ever delivered — unbounded on a long-running
        connection.  Windowed dedupe keeps one contiguous floor per
        peer plus whatever reordering residue is live, so after a
        drain the whole table is at most the peer count."""
        rt = make_rt(reliability=ReliabilityParams(enabled=True))
        ref = rt.spawn(Counter, at=1)
        for _ in range(300):
            rt.send(ref, "incr", from_node=0)
        rt.run()
        assert rt.call(ref, "get", from_node=0) == 300
        rt.run()  # drain the final reply's ack
        worst = max(_dedupe_entries(k.reliable) for k in rt.kernels)
        assert worst <= rt.config.num_nodes, (
            f"dedupe table held {worst} keys after 300 messages — "
            "growing with traffic, not with the reordering window"
        )
        assert all(k.reliable.dedupe_residue == 0 for k in rt.kernels)

    def test_windowed_dedupe_absorbs_duplicates_under_loss(self):
        """Gaps opened by drops (the retransmit arrives out of order
        behind younger seqs) must park in the residue and be reclaimed
        once the floor catches up — with every duplicate still
        absorbed exactly as before."""
        plan = FaultPlan(
            by_kind={
                "deliver_keyed": FaultRule(drop=0.15, duplicate=0.25)
            },
            seed=7,
        )
        rt = make_rt(faults=plan)
        ref = rt.spawn(Counter, at=1)
        for _ in range(60):
            rt.send(ref, "incr", from_node=0)
        rt.run()
        assert rt.call(ref, "get", from_node=0) == 60
        rt.run()
        assert rt.stats.counter("rel.dup_absorbed") > 0
        assert all(k.reliable.dedupe_residue == 0 for k in rt.kernels)
        check_invariants(rt)


class TestBackoffClamp:
    def test_high_attempt_retransmits_do_not_overflow(self):
        """Regression: the backoff computed ``factor ** attempts``
        before clamping, which raises OverflowError near attempt 1024
        with the default factor — reachable exactly when max_retries
        is raised for a long-lived network backend.  The budget must
        run to exhaustion and fail with ReliabilityError instead."""
        plan = FaultPlan(by_kind={"deliver_keyed": FaultRule(drop=1.0)})
        rt = make_rt(
            faults=plan,
            reliability=ReliabilityParams(max_retries=1500),
        )
        ref = rt.spawn(Counter, at=1)
        rt.send(ref, "incr", from_node=0)
        with pytest.raises(ReliabilityError, match="unreachable"):
            rt.run()
        assert rt.stats.counter("rel.retries") == 1500

    def test_overflow_path_still_forces_retransmit_span(self):
        """Past the exponent cap every retransmit must still force its
        ``rel.retransmit`` span — the overflow path may not go dark."""
        from repro import HalRuntime
        from repro.config import TracingParams

        plan = FaultPlan(by_kind={"deliver_keyed": FaultRule(drop=1.0)})
        cfg = RuntimeConfig(
            num_nodes=2,
            reliability=ReliabilityParams(max_retries=1100),
            tracing=TracingParams(sample_rate=0.0),
        )
        rt = HalRuntime(cfg, faults=plan, trace=True)
        rt.load_behaviors(Counter)
        ref = rt.spawn(Counter, at=1)
        rt.send(ref, "incr", from_node=0)
        with pytest.raises(ReliabilityError, match="unreachable"):
            rt.run()
        retrans = rt.spans.of_kind("rel.retransmit")
        assert rt.stats.counter("rel.retries") == 1100
        # Every retransmit forced a span, including the ~76 attempts
        # past the exponent cap (the old overflow region).
        assert len(retrans) == 1100
        attempts = [s.attrs[-1] for s in retrans if s.attrs]
        if attempts:
            assert max(attempts) == 1100
    def test_acks_do_not_hold_quiescence_open(self):
        """In-flight reliability acks are control traffic: quiescent()
        must not count them, or idle balancer polls livelock (each poll
        leaves an ack in flight at the next poll's instant)."""
        rt = make_rt(reliability=ReliabilityParams(enabled=True))
        ref = rt.spawn(Counter, at=1)
        rt.send(ref, "incr", from_node=0)
        rt.run()
        assert rt.quiescent()
        s = rt.stats
        assert s.counter("rel.ack_sent") == s.counter("rel.ack_recv") > 0
