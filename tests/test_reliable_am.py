"""Unit tests for the reliable AM sublayer: ack round trips, retransmit
on drop, duplicate absorption, retry exhaustion, expendable sends."""

from __future__ import annotations

import pytest

from repro import (
    FaultPlan,
    FaultRule,
    HalRuntime,
    ReliabilityParams,
    RuntimeConfig,
    check_invariants,
)
from repro.errors import HandlerError, ReliabilityError
from tests.conftest import Counter


def make_rt(*, faults=None, reliability=None, num_nodes=4):
    cfg_kwargs = {"num_nodes": num_nodes}
    if reliability is not None:
        cfg_kwargs["reliability"] = reliability
    rt = HalRuntime(RuntimeConfig(**cfg_kwargs), faults=faults)
    rt.load_behaviors(Counter)
    return rt


class TestAttachment:
    def test_fault_free_machine_has_no_transport(self):
        rt = make_rt()
        assert all(k.reliable is None for k in rt.kernels)
        assert all(k.endpoint._rel is None for k in rt.kernels)

    def test_faulty_machine_attaches_transport(self):
        rt = make_rt(faults=FaultPlan.protocol_chaos(drop=0.01))
        assert all(k.reliable is not None for k in rt.kernels)

    def test_config_can_force_transport_on(self):
        rt = make_rt(reliability=ReliabilityParams(enabled=True))
        assert all(k.reliable is not None for k in rt.kernels)

    def test_config_can_force_transport_off(self):
        rt = make_rt(faults=FaultPlan.protocol_chaos(drop=0.01),
                     reliability=ReliabilityParams(enabled=False))
        assert all(k.reliable is None for k in rt.kernels)

    def test_empty_plan_degrades_to_fault_free(self):
        rt = make_rt(faults=FaultPlan())
        assert rt.machine.faults is None
        assert all(k.reliable is None for k in rt.kernels)


class TestEnvelopeProtocol:
    def test_clean_round_trip_acks_everything(self):
        rt = make_rt(reliability=ReliabilityParams(enabled=True))
        ref = rt.spawn(Counter, at=1)
        for _ in range(5):
            rt.send(ref, "incr", from_node=0)
        rt.run()
        assert rt.call(ref, "get", from_node=0) == 5
        rt.run()  # drain the final reply's ack
        stats = rt.stats
        assert stats.counter("rel.envelopes") > 0
        assert stats.counter("rel.acks") == stats.counter("rel.envelopes")
        assert stats.counter("rel.retries") == 0
        assert all(k.reliable.pending_count == 0 for k in rt.kernels)

    def test_dropped_packet_is_retransmitted(self):
        plan = FaultPlan(by_kind={"deliver_keyed": FaultRule(drop_count=1)})
        rt = make_rt(faults=plan)
        ref = rt.spawn(Counter, at=1)
        rt.send(ref, "incr", from_node=0)
        rt.run()
        assert rt.call(ref, "get", from_node=0) == 1
        assert rt.stats.counter("faults.dropped_packets") == 1
        assert rt.stats.counter("rel.retries") >= 1
        check_invariants(rt)

    def test_duplicate_packet_dispatched_once(self):
        plan = FaultPlan(by_kind={"deliver_keyed": FaultRule(duplicate=1.0)},
                         seed=1)
        rt = make_rt(faults=plan)
        ref = rt.spawn(Counter, at=1)
        for _ in range(4):
            rt.send(ref, "incr", from_node=0)
        rt.run()
        # Every wire packet arrived twice; every handler ran once.
        assert rt.call(ref, "get", from_node=0) == 4
        assert rt.stats.counter("rel.dup_absorbed") >= 4
        check_invariants(rt)

    def test_partitioned_peer_fails_loudly(self):
        # Drop literally every deliver_keyed packet: retransmits can
        # never get through and the retry budget must trip.
        plan = FaultPlan(by_kind={"deliver_keyed": FaultRule(drop=1.0)})
        rt = make_rt(
            faults=plan,
            reliability=ReliabilityParams(max_retries=3),
        )
        ref = rt.spawn(Counter, at=1)
        rt.send(ref, "incr", from_node=0)
        with pytest.raises(ReliabilityError, match="unreachable"):
            rt.run()
        assert rt.stats.counter("rel.retries") == 3

    def test_expendable_requires_idempotent_handler(self):
        rt = make_rt(reliability=ReliabilityParams(enabled=True))
        kernel = rt.kernels[0]
        with pytest.raises(HandlerError, match="non-idempotent"):
            kernel.node.bootstrap(
                lambda: kernel.endpoint.send(
                    1, "reply", (0, 0, None), expendable=True
                )
            )

    def test_expendable_send_skips_envelope(self):
        rt = make_rt(reliability=ReliabilityParams(enabled=True))
        kernel = rt.kernels[0]
        before = rt.stats.counter("rel.envelopes")
        kernel.node.bootstrap(
            lambda: kernel.endpoint.send(
                1, "cache_addr", (), expendable=True
            )
        )
        assert rt.stats.counter("rel.envelopes") == before
        assert rt.stats.counter("rel.expendable_sends") == 1


class TestAckAccounting:
    def test_acks_do_not_hold_quiescence_open(self):
        """In-flight reliability acks are control traffic: quiescent()
        must not count them, or idle balancer polls livelock (each poll
        leaves an ack in flight at the next poll's instant)."""
        rt = make_rt(reliability=ReliabilityParams(enabled=True))
        ref = rt.spawn(Counter, at=1)
        rt.send(ref, "incr", from_node=0)
        rt.run()
        assert rt.quiescent()
        s = rt.stats
        assert s.counter("rel.ack_sent") == s.counter("rel.ack_recv") > 0
