"""Unit tests for the discrete-event engine and node clocks."""

from __future__ import annotations

import pytest

from repro.errors import CausalityError, SimulationError
from repro.sim.engine import Event, SimNode, Simulator


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(5.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(9.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 9.0

    def test_ties_break_by_schedule_order(self):
        sim = Simulator()
        order = []
        for i in range(10):
            sim.schedule(3.0, lambda i=i: order.append(i))
        sim.run()
        assert order == list(range(10))

    def test_cannot_schedule_in_the_past(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(CausalityError):
            sim.schedule(5.0, lambda: None)

    def test_schedule_at_current_time_allowed(self):
        sim = Simulator()
        hits = []
        sim.schedule(4.0, lambda: sim.schedule(4.0, lambda: hits.append(1)))
        sim.run()
        assert hits == [1]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(CausalityError):
            sim.schedule_after(-1.0, lambda: None)

    def test_cancelled_events_do_not_fire(self):
        sim = Simulator()
        hits = []
        ev = sim.schedule(1.0, lambda: hits.append(1))
        sim.schedule(2.0, lambda: hits.append(2))
        ev.cancel()
        sim.run()
        assert hits == [2]

    def test_run_until_deadline(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, lambda: hits.append(1))
        sim.schedule(100.0, lambda: hits.append(2))
        sim.run(until=50.0)
        assert hits == [1]
        assert sim.now == 50.0
        sim.run()
        assert hits == [1, 2]

    def test_stop_when_predicate(self):
        sim = Simulator()
        hits = []
        for t in range(1, 6):
            sim.schedule(float(t), lambda t=t: hits.append(t))
        sim.run(stop_when=lambda: len(hits) >= 3)
        assert hits == [1, 2, 3]

    def test_max_events_guard(self):
        sim = Simulator(max_events=10)

        def loop():
            sim.schedule_after(1.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run()

    def test_pending_and_peek(self):
        sim = Simulator()
        assert sim.peek_time() is None
        sim.schedule(7.0, lambda: None)
        assert sim.pending == 1
        assert sim.peek_time() == 7.0

    def test_step_returns_false_when_idle(self):
        sim = Simulator()
        assert sim.step() is False


class TestSimNode:
    def test_charge_advances_node_clock(self):
        sim = Simulator()
        node = SimNode(0, sim)
        node.execute(1.0, lambda: node.charge(5.0))
        sim.run()
        assert node.busy_until == 6.0
        assert node.busy_us == 5.0

    def test_busy_node_serialises_handlers(self):
        sim = Simulator()
        node = SimNode(0, sim)
        starts = []
        node.execute(0.0, lambda: (starts.append(node.now), node.charge(10.0)))
        node.execute(2.0, lambda: starts.append(node.now))
        sim.run()
        assert starts == [0.0, 10.0]

    def test_negative_charge_rejected(self):
        sim = Simulator()
        node = SimNode(0, sim)
        node.execute(0.0, lambda: node.charge(-1.0))
        with pytest.raises(SimulationError):
            sim.run()

    def test_preempting_handler_steals_cycles(self):
        """A preempting handler runs at arrival and pushes the victim's
        completion back by the stolen time (§3 processor stealing)."""
        sim = Simulator()
        node = SimNode(0, sim)
        log = []
        node.execute(0.0, lambda: (log.append(("victim", node.now)),
                                   node.charge(100.0)))
        node.execute_preempting(
            30.0, lambda: (log.append(("thief", node.now)), node.charge(2.0))
        )
        sim.run()
        assert log == [("victim", 0.0), ("thief", 30.0)]
        # victim's 100us now completes at 102.
        assert node.busy_until == 102.0

    def test_preempting_on_idle_node_behaves_normally(self):
        sim = Simulator()
        node = SimNode(0, sim)
        node.execute_preempting(5.0, lambda: node.charge(3.0))
        sim.run()
        assert node.busy_until == 8.0

    def test_bootstrap_runs_outside_event_loop(self):
        sim = Simulator()
        node = SimNode(0, sim)
        result = node.bootstrap(lambda: (node.charge(4.0), 42)[1])
        assert result == 42
        assert node.busy_until == 4.0
        # A second bootstrap queues behind the first.
        node.bootstrap(lambda: node.charge(1.0))
        assert node.busy_until == 5.0

    def test_bootstrap_inside_handler_rejected(self):
        sim = Simulator()
        node = SimNode(0, sim)
        node.execute(0.0, lambda: node.bootstrap(lambda: None))
        with pytest.raises(SimulationError, match="bootstrap"):
            sim.run()

    def test_execute_now_from_handler_queues_after_charges(self):
        sim = Simulator()
        node = SimNode(0, sim)
        times = []

        def first():
            node.charge(10.0)
            node.execute_now(lambda: times.append(node.now))

        node.execute(0.0, first)
        sim.run()
        assert times == [10.0]
