"""grpnew, placements, member addressing, broadcast (§2.2, §6.4)."""

from __future__ import annotations

import pytest

from repro import behavior, method
from repro.errors import GroupError
from repro.runtime.groups import GroupRef, place_block, place_cyclic
from repro.runtime.names import AddrKind
from tests.conftest import Counter, make_runtime


@behavior
class Indexed:
    def __init__(self, tag, index, size):
        self.tag = tag
        self.index = index
        self.size = size
        self.got = []

    @method
    def mark(self, ctx, x):
        self.got.append(x)

    @method
    def coords(self, ctx):
        return (self.index, self.size, ctx.node)


class TestPlacements:
    def test_cyclic(self):
        assert [place_cyclic(i, 8, 4) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_block(self):
        assert [place_block(i, 8, 4) for i in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_block_uneven(self):
        homes = [place_block(i, 10, 4) for i in range(10)]
        assert homes == sorted(homes)
        assert set(homes) == {0, 1, 2, 3}

    def test_group_ref_member_addresses(self):
        g = GroupRef((0, 1), 6, "cyclic", 3)
        m = g.member(4)
        assert m.address.kind is AddrKind.GROUP
        assert m.address.aux == 4
        assert m.address.home == 1
        with pytest.raises(GroupError):
            g.member(6)

    def test_local_indices(self):
        g = GroupRef((0, 1), 8, "block", 4)
        assert g.local_indices(1) == [2, 3]


class TestGrpnew:
    def test_members_created_on_placement_nodes(self):
        rt = make_runtime(4)
        rt.load_behaviors(Indexed)
        g = rt.grpnew(Indexed, 8, "t", placement="cyclic")
        rt.run()
        for i in range(8):
            idx, size, node = rt.call(g.member(i), "coords")
            assert (idx, size) == (i, 8)
            assert node == i % 4

    def test_block_placement(self):
        rt = make_runtime(4)
        rt.load_behaviors(Indexed)
        g = rt.grpnew(Indexed, 8, "t", placement="block")
        rt.run()
        assert rt.locate(g.member(0)) == 0
        assert rt.locate(g.member(7)) == 3

    def test_group_usable_before_creation_completes(self):
        """Sends to members race the creation fan-out safely."""
        rt = make_runtime(4)
        rt.load_behaviors(Indexed)
        g = rt.grpnew(Indexed, 4, "t")
        # no rt.run() in between: fire immediately
        for i in range(4):
            rt.send(g.member(i), "mark", i * 10)
        rt.run()
        for i in range(4):
            assert rt.state_of(g.member(i)).got == [i * 10]

    def test_bad_parameters(self):
        rt = make_runtime(4)
        rt.load_behaviors(Indexed)
        with pytest.raises(GroupError):
            rt.grpnew(Indexed, 0, "t")
        with pytest.raises(GroupError):
            rt.grpnew(Indexed, 4, "t", placement="diagonal")

    def test_groups_larger_than_partition(self):
        rt = make_runtime(2)
        rt.load_behaviors(Indexed)
        g = rt.grpnew(Indexed, 10, "t")
        rt.run()
        assert rt.total_actors() == 10

    def test_member_without_index_convention(self):
        rt = make_runtime(2)
        g = rt.grpnew(Counter, 4, 100)
        rt.run()
        assert all(rt.state_of(g.member(i)).value == 100 for i in range(4))


class TestBroadcast:
    def test_copy_delivered_to_every_member(self):
        rt = make_runtime(4)
        rt.load_behaviors(Indexed)
        g = rt.grpnew(Indexed, 9, "t")
        rt.run()
        rt.broadcast(g, "mark", "hello")
        rt.run()
        for i in range(9):
            assert rt.state_of(g.member(i)).got == ["hello"]

    def test_broadcasts_from_member(self):
        @behavior
        class Gossip:
            def __init__(self, index, size):
                self.index = index
                self.heard = 0

            @method
            def rumor(self, ctx):
                self.heard += 1

            @method
            def spread(self, ctx):
                ctx.broadcast(ctx.actor.group, "rumor")

        rt = make_runtime(4)
        rt.load_behaviors(Gossip)
        g = rt.grpnew(Gossip, 6)
        rt.run()
        rt.send(g.member(2), "spread")
        rt.run()
        assert sum(rt.state_of(g.member(i)).heard for i in range(6)) == 6

    def test_two_groups_do_not_interfere(self):
        rt = make_runtime(4)
        rt.load_behaviors(Indexed)
        g1 = rt.grpnew(Indexed, 4, "a")
        g2 = rt.grpnew(Indexed, 4, "b")
        rt.run()
        rt.broadcast(g1, "mark", 1)
        rt.run()
        assert all(rt.state_of(g1.member(i)).got == [1] for i in range(4))
        assert all(rt.state_of(g2.member(i)).got == [] for i in range(4))

    def test_migrated_member_still_gets_broadcasts(self):
        @behavior
        class Roamer:
            def __init__(self, index, size):
                self.index = index
                self.got = 0

            @method
            def mv(self, ctx, to):
                ctx.migrate(to)

            @method
            def tick(self, ctx):
                self.got += 1

        rt = make_runtime(4)
        rt.load_behaviors(Roamer)
        g = rt.grpnew(Roamer, 4)
        rt.run()
        rt.send(g.member(1), "mv", 3)
        rt.run()
        assert rt.locate(g.member(1)) == 3
        rt.broadcast(g, "tick")
        rt.run()
        assert all(rt.state_of(g.member(i)).got == 1 for i in range(4))
