"""Interconnect model: latency, NIC serialisation, back-pressure."""

from __future__ import annotations

import pytest

from repro.config import NetworkParams, RuntimeConfig
from repro.errors import NetworkError
from repro.sim.engine import SimNode, Simulator
from repro.sim.network import Network
from repro.sim.stats import StatsRegistry
from repro.sim.topology import HypercubeTopology


def make_net(n=4, **param_overrides):
    sim = Simulator()
    nodes = [SimNode(i, sim) for i in range(n)]
    params = NetworkParams(**param_overrides)
    net = Network(sim, HypercubeTopology(n), nodes, params, StatsRegistry())
    return sim, nodes, net


class TestUnicast:
    def test_delivery_happens_after_wire_latency(self):
        sim, nodes, net = make_net()
        arrived = []
        net.unicast(0, 1, 20, lambda: arrived.append(sim.now))
        sim.run()
        p = net.params
        expected = (
            20 * p.inject_us_per_byte
            + p.base_latency_us + 1 * p.per_hop_us
            + 20 * p.drain_us_per_byte
        )
        assert arrived == [pytest.approx(expected)]

    def test_local_unicast_rejected(self):
        _, _, net = make_net()
        with pytest.raises(NetworkError):
            net.unicast(2, 2, 10, lambda: None)

    def test_empty_message_rejected(self):
        _, _, net = make_net()
        with pytest.raises(NetworkError):
            net.unicast(0, 1, 0, lambda: None)

    def test_sender_nic_serialises_injection(self):
        sim, nodes, net = make_net(inject_us_per_byte=1.0)
        done = []
        t1 = net.unicast(0, 1, 100, lambda: done.append("a"))
        t2 = net.unicast(0, 2, 100, lambda: done.append("b"))
        assert t2 == pytest.approx(t1 + 100.0)

    def test_receiver_nic_serialises_drain(self):
        sim, nodes, net = make_net(drain_us_per_byte=1.0, inject_us_per_byte=0.0)
        times = []
        net.unicast(0, 3, 100, lambda: times.append(sim.now))
        net.unicast(1, 3, 100, lambda: times.append(sim.now))
        sim.run()
        assert len(times) == 2
        # second message drains strictly after the first finishes
        assert times[1] >= times[0] + 100.0

    def test_messages_between_same_pair_stay_fifo(self):
        sim, nodes, net = make_net()
        order = []
        for i in range(10):
            net.unicast(0, 1, 24 + i, lambda i=i: order.append(i))
        sim.run()
        assert order == list(range(10))


class TestBackPressure:
    def test_single_large_transfer_pays_no_penalty(self):
        sim, nodes, net = make_net(rx_buffer_bytes=1000)
        net.unicast(0, 1, 50_000, lambda: None)
        sim.run()
        assert net.stats.counter("net.backup_events") == 0

    def test_converging_bulks_overflow_the_buffer(self):
        sim, nodes, net = make_net(rx_buffer_bytes=1000)
        for src in (0, 1, 2):
            net.unicast(src, 3, 5_000, lambda: None)
        sim.run()
        assert net.stats.counter("net.backup_events") > 0
        assert net.stats.counter("net.backup_bytes") > 0

    def test_penalty_delays_delivery(self):
        times_small_buffer = []
        times_big_buffer = []
        for buf, times in ((100, times_small_buffer), (10**9, times_big_buffer)):
            sim, nodes, net = make_net(rx_buffer_bytes=buf)
            for src in (0, 1, 2):
                net.unicast(src, 3, 4_000, lambda: times.append(sim.now))
            sim.run()
        assert max(times_small_buffer) > max(times_big_buffer)

    def test_small_messages_behind_one_bulk_unpenalised(self):
        sim, nodes, net = make_net(rx_buffer_bytes=1000)
        net.unicast(0, 3, 50_000, lambda: None)
        net.unicast(1, 3, 24, lambda: None)
        sim.run()
        assert net.stats.counter("net.backup_events") == 0


class TestAccounting:
    def test_stats_counters(self):
        sim, nodes, net = make_net()
        net.unicast(0, 1, 100, lambda: None)
        net.unicast(1, 2, 200, lambda: None)
        sim.run()
        assert net.stats.counter("net.messages") == 2
        assert net.stats.counter("net.bytes") == 300

    def test_reset_contention(self):
        sim, nodes, net = make_net(inject_us_per_byte=1.0)
        net.unicast(0, 1, 1000, lambda: None)
        net.reset_contention()
        t = net.unicast(0, 1, 10, lambda: None)
        assert t == pytest.approx(10.0)

    def test_node_count_must_match_topology(self):
        sim = Simulator()
        with pytest.raises(NetworkError):
            Network(sim, HypercubeTopology(4), [SimNode(0, sim)],
                    NetworkParams(), StatsRegistry())
