"""Property-based tests (hypothesis) over the runtime's core
invariants:

- exactly-once delivery under arbitrary migration/send interleavings;
- name-table consistency convergence (all caches eventually point at
  the true location once traffic flows);
- determinism: identical seeds give identical simulated histories;
- group placement partitions indices;
- bounded-buffer linearisation under random put/get mixes.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import HalRuntime, RuntimeConfig, behavior, method
from repro.config import LoadBalanceParams
from repro.runtime.groups import GroupRef, PLACEMENTS
from tests.conftest import BoundedBuffer, Counter, make_runtime

# Simulations are CPU-heavy for hypothesis defaults.
SIM_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestExactlyOnceDelivery:
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("send"), st.integers(0, 7)),
                st.tuples(st.just("move"), st.integers(0, 7)),
                st.tuples(st.just("drain"), st.just(0)),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @SIM_SETTINGS
    def test_every_send_increments_exactly_once(self, ops):
        rt = make_runtime(8)
        ref = rt.spawn(Counter, at=0)
        rt.run()
        sent = 0
        for op, arg in ops:
            if op == "send":
                rt.send(ref, "incr", from_node=arg)
                sent += 1
            elif op == "move":
                rt.run()
                where = rt.locate(ref)
                if where != arg:
                    kernel = rt.kernels[where]
                    kernel.node.bootstrap(
                        lambda k=kernel: k.migration.start(rt.actor_of(ref), arg)
                    )
            else:
                rt.run()
        rt.run()
        assert rt.state_of(ref).value == sent

    @given(seed=st.integers(0, 2**16), n=st.integers(8, 14))
    @SIM_SETTINGS
    def test_fib_correct_under_any_seed(self, seed, n):
        """Random steal interleavings never corrupt the computation."""
        from repro.apps.fibonacci import fib_value, run_fib
        r = run_fib(n, 4, load_balance=True, seed=seed)
        assert r.value == fib_value(n)


class TestConsistencyConvergence:
    @given(moves=st.lists(st.integers(0, 7), min_size=1, max_size=6))
    @SIM_SETTINGS
    def test_caches_converge_after_traffic(self, moves):
        """After migrations settle and every node sends one message,
        every node's descriptor points at the actor's true location."""
        rt = make_runtime(8)
        ref = rt.spawn(Counter, at=0)
        rt.run()
        for dest in moves:
            where = rt.locate(ref)
            if where != dest:
                kernel = rt.kernels[where]
                kernel.node.bootstrap(
                    lambda k=kernel: k.migration.start(rt.actor_of(ref), dest)
                )
                rt.run()
        final = rt.locate(ref)
        for src in range(8):
            rt.send(ref, "incr", from_node=src)
        rt.run()
        assert rt.state_of(ref).value == 8
        from repro.runtime.names import DescState
        for kernel in rt.kernels:
            desc = kernel.table.get(ref.address)
            if desc is None:
                continue
            if desc.is_local:
                assert kernel.node_id == final
            elif desc.state is DescState.REMOTE:
                # best guess must now be the truth
                assert desc.remote_node == final


class TestDeterminism:
    @given(seed=st.integers(0, 2**20))
    @SIM_SETTINGS
    def test_same_seed_same_history(self, seed):
        from repro.apps.fibonacci import run_fib
        a = run_fib(12, 4, load_balance=True, seed=seed)
        b = run_fib(12, 4, load_balance=True, seed=seed)
        assert (a.elapsed_us, a.steals) == (b.elapsed_us, b.steals)


class TestGroupPlacement:
    @given(
        n=st.integers(1, 60),
        p=st.integers(1, 16),
        placement=st.sampled_from(sorted(PLACEMENTS)),
    )
    @settings(max_examples=100, deadline=None)
    def test_placement_partitions_indices(self, n, p, placement):
        g = GroupRef((0, 1), n, placement, p)
        buckets = [g.local_indices(node) for node in range(p)]
        flat = [i for b in buckets for i in b]
        assert sorted(flat) == list(range(n))
        # balanced to within one member
        sizes = [len(b) for b in buckets if b]
        if sizes:
            assert max(sizes) - min(sizes) <= 1


class TestConstraintLinearisation:
    @given(
        ops=st.lists(st.sampled_from(["put", "get"]), min_size=1, max_size=20),
        cap=st.integers(1, 4),
    )
    @SIM_SETTINGS
    def test_bounded_buffer_is_a_fifo(self, ops, cap):
        """No matter the arrival mix, every completed get returns the
        items in insertion order, and pending counts stay consistent."""
        rt = make_runtime(2)
        buf = rt.spawn(BoundedBuffer, cap, at=0)
        puts = sum(1 for o in ops if o == "put")
        gets = sum(1 for o in ops if o == "get")
        results = []
        next_item = 0
        for op in ops:
            if op == "put":
                rt.send(buf, "put", next_item, from_node=1)
                next_item += 1
            else:
                target, box = rt.make_collector(from_node=1)
                kernel = rt.kernels[1]
                kernel.node.bootstrap(
                    lambda k=kernel, t=target: k.delivery.send_message(
                        buf, "get", (), reply_to=t
                    )
                )
                results.append(box)
        rt.run()
        completed = [b[0] for b in results if b]
        assert completed == sorted(completed)
        assert len(completed) == min(puts, gets)
        state = rt.state_of(buf)
        assert len(state.items) == max(0, min(puts, cap + len(completed)) - len(completed))
