"""Order-equivalence property test: overhauled engine vs seed engine.

The hot-path overhaul (list heap entries, args pass-through, tombstone
compaction, O(1) ``pending``) must not change *what* the simulator
computes — only how fast.  These tests replay identical randomized
schedule/cancel workloads (seeded via :mod:`repro.sim.rng`) on the
current engine and on the vendored seed engine
(``benchmarks/_seed_engine.py``) and require:

1. the exact same firing order ``(time, event_id)`` trace;
2. the exact same executed-event count and final clock;
3. the exact same final ``StatsRegistry.snapshot()`` when the workload
   records per-event counters and timers;
4. bit-identical traces across two runs of the same engine (determinism).
"""

from __future__ import annotations

import importlib.util
import itertools
import os
import sys

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.stats import StatsRegistry

# The seed engine is vendored next to the benchmark that measures
# against it; load it by path so tests need no sys.path games.
_SEED_ENGINE_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "benchmarks", "_seed_engine.py"
)
_spec = importlib.util.spec_from_file_location("_seed_engine", _SEED_ENGINE_PATH)
_seed_engine = importlib.util.module_from_spec(_spec)
# Registered before exec: the dataclass machinery resolves field types
# through sys.modules[cls.__module__].
sys.modules.setdefault("_seed_engine", _seed_engine)
_spec.loader.exec_module(_seed_engine)
SeedSimulator = _seed_engine.SeedSimulator

#: Small time grids with repeats so ties (same ``time``, different
#: ``seq``) occur constantly — the tie-break contract is the point.
_START_GRID = (0.0, 1.0, 2.0, 2.0, 5.0, 5.0, 5.0, 9.0)
_DELAY_GRID = (0.0, 0.0, 0.5, 1.5, 3.0)
_MAX_DEPTH = 3


def run_workload(sim, seed: int, n_initial: int = 60, stats=None):
    """Drive one randomized schedule/cancel workload to completion.

    All randomness flows from one named substream, and draws happen in
    firing order — so two engines produce the same workload if and only
    if they fire events in the same order, which is exactly the
    property under test.
    """
    rng = RngStreams(seed).stream("order-property")
    log = []
    handles = []
    ids = itertools.count()

    def make_cb(eid: int, depth: int):
        def cb() -> None:
            log.append((round(sim.now, 9), eid))
            if stats is not None:
                stats.incr("wl.fired")
                stats.incr(f"wl.lane{eid % 4}")
                stats.timer("wl.gap_us").record(sim.now)
            if depth < _MAX_DEPTH:
                for _ in range(rng.choice((0, 0, 1, 2))):
                    t = sim.now + rng.choice(_DELAY_GRID)
                    handles.append(sim.schedule(t, make_cb(next(ids), depth + 1)))
            if handles and rng.random() < 0.35:
                # May hit live, already-fired, or already-cancelled
                # handles — all three must behave identically.
                handles[rng.randrange(len(handles))].cancel()

        return cb

    for _ in range(n_initial):
        t = rng.choice(_START_GRID)
        handles.append(sim.schedule(t, make_cb(next(ids), 0)))
    sim.run()
    return log


@pytest.mark.parametrize("seed", [7, 42, 1995, 20_000_101])
def test_firing_order_matches_seed_engine(seed):
    seed_sim = SeedSimulator()
    seed_log = run_workload(seed_sim, seed)
    new_sim = Simulator()
    new_log = run_workload(new_sim, seed)
    assert new_log == seed_log
    assert new_sim.events_executed == seed_sim.events_executed
    assert new_sim.now == seed_sim.now
    assert new_sim.pending == seed_sim.pending == 0


@pytest.mark.parametrize("seed", [3, 1234])
def test_stats_snapshot_matches_seed_engine(seed):
    seed_stats = StatsRegistry()
    run_workload(SeedSimulator(), seed, stats=seed_stats)
    new_stats = StatsRegistry()
    run_workload(Simulator(), seed, stats=new_stats)
    assert new_stats.snapshot() == seed_stats.snapshot()


@pytest.mark.parametrize("engine", [Simulator, SeedSimulator])
def test_determinism_across_identical_runs(engine):
    a = run_workload(engine(), 555)
    b = run_workload(engine(), 555)
    assert a == b
    assert len(a) > 60  # the workload actually spawned children


def test_cancellation_heavy_workload_compacts_and_agrees():
    """A workload dominated by cancels pushes the new engine through
    its compaction path; order and counts must still match the seed."""
    for seed in (11, 13):
        logs = []
        for make in (SeedSimulator, Simulator):
            sim = make()
            rng = RngStreams(seed).stream("cancel-heavy")
            log = []
            handles = [
                sim.schedule(
                    rng.choice(_START_GRID) + 10.0 * rng.random(),
                    (lambda i=i: log.append(i)),
                )
                for i in range(600)
            ]
            for i, h in enumerate(handles):
                if rng.random() < 0.8:
                    h.cancel()
            sim.run()
            logs.append((log, sim.events_executed, sim.pending))
        assert logs[0] == logs[1]
