"""Creation: local, alias-based remote (latency hiding), split-phase,
creation races, tasks."""

from __future__ import annotations

import pytest

from repro import HalRuntime, RuntimeConfig, behavior, method
from repro.errors import LoadError, ReproError
from repro.runtime.names import AddrKind
from tests.conftest import Counter, EchoServer, make_runtime


class TestLocalCreation:
    def test_spawn_registers_locally(self, rt4):
        ref = rt4.spawn(Counter, 5, at=2)
        assert ref.address.kind is AddrKind.ORDINARY
        assert ref.address.node == 2
        assert rt4.locate(ref) == 2
        assert rt4.state_of(ref).value == 5

    def test_each_creation_gets_fresh_address(self, rt4):
        refs = {rt4.spawn(Counter, at=1).address for _ in range(10)}
        assert len(refs) == 10

    def test_creation_charges_calibrated_cost(self, rt4):
        kernel = rt4.kernels[0]
        before = kernel.node.busy_us
        rt4.spawn(Counter, at=0)
        assert kernel.node.busy_us - before == pytest.approx(
            rt4.costs.create_local_total_us
        )


class TestAliasCreation:
    def test_remote_creation_returns_alias_immediately(self, rt4):
        ref = rt4.spawn_remote(Counter, at=3, issuing_node=0)
        assert ref.address.kind is AddrKind.ALIAS
        assert ref.address.node == 0          # issuing node
        assert ref.address.home_node() == 3   # encoded actual node
        # not yet created; the request is still in flight
        rt4.run()
        assert rt4.locate(ref) == 3

    def test_alias_usable_before_creation_completes(self, rt4):
        """Messages sent through the alias while the creation request
        is still in flight must be delivered (FIFO per pair)."""
        ref = rt4.spawn_remote(Counter, 0, at=2, issuing_node=0)
        rt4.send(ref, "incr", 7)   # before rt4.run()!
        rt4.run()
        assert rt4.state_of(ref).value == 7

    def test_descriptor_address_cached_back(self, rt4):
        ref = rt4.spawn_remote(Counter, at=3, issuing_node=1)
        rt4.run()
        desc = rt4.kernels[1].table.get(ref.address)
        assert desc.remote_node == 3
        assert desc.has_cached_addr

    def test_third_party_message_racing_creation(self):
        """A node that learns the alias from a message can send to it
        before the creation lands on the home node."""
        rt = make_runtime(4)

        @behavior
        class Spreader:
            def __init__(self):
                pass

            @method
            def make_and_tell(self, ctx, messenger):
                ref = ctx.new(Counter, at=3)
                # Hand the alias to a third party immediately.
                ctx.send(messenger, "poke", ref)

        @behavior
        class Messenger:
            def __init__(self):
                pass

            @method
            def poke(self, ctx, ref):
                ctx.send(ref, "incr", 11)

        rt.load_behaviors(Spreader, Messenger)
        spreader = rt.spawn(Spreader, at=0)
        messenger = rt.spawn(Messenger, at=2)
        rt.send(spreader, "make_and_tell", messenger)
        rt.run()
        # exactly one Counter exists and received the increment
        counters = [
            a for k in rt.kernels for a in k.table.local_actors()
            if a.behavior.name == "Counter"
        ]
        assert len(counters) == 1
        assert counters[0].state.value == 11

    def test_alias_disabled_raises_helpfully(self):
        rt = make_runtime(4, alias_creation=False)
        with pytest.raises(ReproError, match="split-phase"):
            rt.spawn_remote(Counter, at=1, issuing_node=0)

    def test_issue_cost_matches_paper(self):
        from repro.apps.microbench import fresh_runtime, measure_remote_creation_issue
        rt = fresh_runtime(2)
        assert measure_remote_creation_issue(rt) == pytest.approx(5.83)


class TestSplitPhaseCreation:
    def test_request_create_returns_ordinary_ref(self):
        rt = make_runtime(4, alias_creation=False)

        @behavior
        class Maker:
            def __init__(self):
                self.made = None

            @method
            def make(self, ctx):
                ref = yield ctx.request_create(Counter, 3, at=2)
                self.made = ref
                value = yield ctx.request(ref, "get")
                return value

        rt.load_behaviors(Maker)
        maker = rt.spawn(Maker, at=0)
        assert rt.call(maker, "make") == 3
        made = rt.state_of(maker).made
        assert made.address.kind is AddrKind.ORDINARY
        assert rt.locate(made) == 2

    def test_request_create_local(self, rt4):
        @behavior
        class LocalMaker:
            def __init__(self):
                pass

            @method
            def make(self, ctx):
                ref = yield ctx.request_create(Counter, 9, at=ctx.node)
                v = yield ctx.request(ref, "get")
                return v

        rt4.load_behaviors(LocalMaker)
        maker = rt4.spawn(LocalMaker, at=1)
        assert rt4.call(maker, "make") == 9


class TestTasks:
    def test_spawn_task_runs(self, rt4):
        hits = []
        rt4.load_behaviors(tasks={"probe": lambda ctx, x: hits.append((ctx.node, x))})
        rt4.spawn_task("probe", 42, at=0)
        rt4.run()
        assert hits == [(0, 42)]

    def test_remote_task_spawn(self, rt4):
        hits = []
        rt4.load_behaviors(tasks={"probe2": lambda ctx: hits.append(ctx.node)})
        kernel = rt4.kernels[0]
        kernel.node.bootstrap(lambda: kernel.creation.spawn_task("probe2", (), at=3))
        rt4.run()
        assert hits == [3]

    def test_unknown_task_rejected(self, rt4):
        with pytest.raises(ReproError, match="not loaded"):
            rt4.spawn_task("nope")


class TestLoading:
    def test_unloaded_behavior_rejected_in_ctx_new(self, rt4):
        @behavior
        class Unloaded:
            def __init__(self):
                pass

            @method
            def m(self, ctx):
                pass

        @behavior
        class Maker2:
            def __init__(self):
                pass

            @method
            def make(self, ctx):
                ctx.new(Unloaded)

        rt4.load_behaviors(Maker2)  # Unloaded deliberately not loaded
        maker = rt4.spawn(Maker2, at=0)
        rt4.send(maker, "make")
        with pytest.raises(LoadError, match="not loaded"):
            rt4.run()
