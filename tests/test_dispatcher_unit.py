"""Dispatcher unit behaviour: queue disciplines, steal filtering,
idle callbacks, schedulable kinds."""

from __future__ import annotations

import pytest

from repro import HalRuntime, RuntimeConfig
from repro.actors.continuations import JoinContinuation
from repro.runtime.dispatcher import FireContinuation, GroupBatch, Task
from tests.conftest import Counter, make_runtime


def kernel_of(rt, node=0):
    return rt.kernels[node]


class TestQueueMechanics:
    def test_actor_enqueue_idempotent(self, rt4):
        k = kernel_of(rt4)
        ref = rt4.spawn(Counter, at=0)
        actor = rt4.actor_of(ref)
        k.dispatcher.enqueue_actor(actor)
        k.dispatcher.enqueue_actor(actor)
        assert k.dispatcher.queue_length == 1

    def test_migrating_actor_not_enqueued(self, rt4):
        k = kernel_of(rt4)
        ref = rt4.spawn(Counter, at=0)
        actor = rt4.actor_of(ref)
        actor.migrating = True
        k.dispatcher.enqueue_actor(actor)
        assert k.dispatcher.queue_length == 0

    def test_idle_callback_fires_when_drained(self, rt4):
        k = kernel_of(rt4)
        idles = []
        k.dispatcher.idle_callbacks.append(lambda: idles.append(rt4.now))
        ref = rt4.spawn(Counter, at=0)
        rt4.send(ref, "incr")
        rt4.run()
        assert idles  # drained at least once

    def test_surplus_counts_only_stealable(self, rt4):
        k = kernel_of(rt4)
        k.dispatcher.enqueue(Task("t", ()))
        cont = JoinContinuation(1, 0, lambda c: None)
        k.dispatcher.enqueue(FireContinuation(cont))
        assert k.dispatcher.surplus() == 1  # continuations never move

    def test_steal_one_skips_unstealable(self, rt4):
        k = kernel_of(rt4)
        cont = JoinContinuation(1, 0, lambda c: None)
        k.dispatcher.enqueue(FireContinuation(cont))
        k.dispatcher.enqueue(Task("t", (1,)))
        item = k.dispatcher.steal_one(from_tail=False)
        assert isinstance(item, Task)
        assert k.dispatcher.steal_one(from_tail=False) is None
        assert k.dispatcher.queue_length == 1  # the continuation stayed

    def test_busy_actor_not_stealable(self, rt4):
        k = kernel_of(rt4)
        ref = rt4.spawn(Counter, at=0)
        actor = rt4.actor_of(ref)
        actor.mailbox.enqueue(__import__("repro.actors.message",
                                         fromlist=["ActorMessage"]).ActorMessage("incr"))
        k.dispatcher.enqueue_actor(actor)
        actor.busy = True
        assert k.dispatcher.steal_one() is None
        actor.busy = False
        stolen = k.dispatcher.steal_one()
        assert stolen is actor
        assert not actor.scheduled


class TestDisciplineOrder:
    def make(self, stack: bool):
        from repro.config import SchedulerParams
        return make_runtime(
            1, scheduler=SchedulerParams(stack_scheduling=stack)
        )

    def test_mixed_items_lifo(self):
        rt = self.make(True)
        order = []
        rt.load_behaviors(tasks={
            "a": lambda ctx: order.append("a"),
            "b": lambda ctx: order.append("b"),
        })
        k = rt.kernels[0]
        k.node.bootstrap(lambda: (
            k.dispatcher.enqueue(Task("a", ())),
            k.dispatcher.enqueue(Task("b", ())),
        ))
        rt.run()
        assert order == ["b", "a"]

    def test_mixed_items_fifo(self):
        rt = self.make(False)
        order = []
        rt.load_behaviors(tasks={
            "a": lambda ctx: order.append("a"),
            "b": lambda ctx: order.append("b"),
        })
        k = rt.kernels[0]
        k.node.bootstrap(lambda: (
            k.dispatcher.enqueue(Task("a", ())),
            k.dispatcher.enqueue(Task("b", ())),
        ))
        rt.run()
        assert order == ["a", "b"]


class TestGroupBatchExecution:
    def test_batch_skips_none_and_processes_all(self, rt4):
        g = rt4.grpnew(Counter, 6, 0)
        rt4.run()
        rt4.broadcast(g, "incr", 3)
        rt4.run()
        assert sum(rt4.state_of(g.member(i)).value for i in range(6)) == 18

    def test_unknown_schedulable_rejected(self, rt4):
        from repro.errors import SchedulingError
        k = kernel_of(rt4)
        k.dispatcher.ready.append(object())
        k.dispatcher._ensure_slice()
        with pytest.raises(SchedulingError, match="unknown schedulable"):
            rt4.run()
