"""RNG streams, stats registry, trace log, machine facade."""

from __future__ import annotations

import random

from repro.config import RuntimeConfig
from repro.sim.machine import Machine
from repro.sim.rng import RngStreams
from repro.sim.stats import StatsRegistry, TimerStat
from repro.sim.trace import TraceLog


class TestRngStreams:
    def test_same_seed_same_sequence(self):
        a = RngStreams(42).stream("x")
        b = RngStreams(42).stream("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_are_independent(self):
        streams = RngStreams(42)
        xs = [streams.stream("x").random() for _ in range(3)]
        ys = [streams.stream("y").random() for _ in range(3)]
        assert xs != ys

    def test_stream_is_cached(self):
        streams = RngStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_adding_a_consumer_does_not_perturb_others(self):
        s1 = RngStreams(7)
        first = s1.stream("steal/node0").random()
        s2 = RngStreams(7)
        s2.stream("brand-new-stream").random()
        assert s2.stream("steal/node0").random() == first

    def test_node_stream_and_fork(self):
        streams = RngStreams(3)
        assert isinstance(streams.node_stream("steal", 2), random.Random)
        fork = streams.fork("child")
        assert fork.stream("x").random() != streams.stream("x").random()


class TestStats:
    def test_counters(self):
        s = StatsRegistry()
        s.incr("a")
        s.incr("a", 4)
        assert s.counter("a") == 5
        assert s.counter("missing") == 0

    def test_timers(self):
        s = StatsRegistry()
        for v in (1.0, 3.0, 5.0):
            s.record_time("t", v)
        t = s.timer("t")
        assert t.count == 3
        assert t.mean_us == 3.0
        assert t.min_us == 1.0
        assert t.max_us == 5.0

    def test_empty_timer_mean(self):
        assert TimerStat().mean_us == 0.0

    def test_gauges(self):
        s = StatsRegistry()
        s.set_gauge("g", 2.0)
        s.max_gauge("g", 1.0)
        assert s.gauges["g"] == 2.0
        s.max_gauge("g", 9.0)
        assert s.gauges["g"] == 9.0

    def test_snapshot_and_reset(self):
        s = StatsRegistry()
        s.incr("a")
        s.record_time("t", 2.0)
        snap = s.snapshot()
        assert snap["counter.a"] == 1.0
        assert snap["timer.t.count"] == 1.0
        s.reset()
        assert s.counter("a") == 0

    def test_table_render(self):
        s = StatsRegistry()
        assert s.table() == "(no counters)"
        s.incr("am.sends", 2)
        s.incr("net.bytes", 100)
        out = s.table(prefixes=["am."])
        assert "am.sends" in out and "net.bytes" not in out


class TestTrace:
    def test_disabled_by_default(self):
        t = TraceLog()
        t.emit(1.0, 0, "x")
        assert len(t) == 0

    def test_enabled_records(self):
        t = TraceLog(enabled=True)
        t.emit(1.0, 0, "send", "a", 3)
        t.emit(2.0, 1, "recv")
        assert t.count("send") == 1
        assert len(t.of_kind("recv")) == 1
        assert t.where(lambda r: r.node == 1)[0].kind == "recv"

    def test_capacity_cap(self):
        t = TraceLog(enabled=True, capacity=2)
        for i in range(5):
            t.emit(float(i), 0, "e")
        assert len(t) == 2

    def test_dump_and_clear(self):
        t = TraceLog(enabled=True)
        for i in range(3):
            t.emit(float(i), 0, "e", i)
        assert "e 0" in t.dump(limit=1)
        assert "2 more" in t.dump(limit=1)
        t.clear()
        assert len(t) == 0


class TestMachine:
    def test_boot_shape(self):
        m = Machine(RuntimeConfig(num_nodes=8))
        assert m.num_nodes == 8
        assert len(m.nodes) == 8
        assert m.topology.size == 8
        assert m.frontend_node.node_id == -1

    def test_cpu_utilisation(self):
        m = Machine(RuntimeConfig(num_nodes=2))
        m.nodes[0].execute(0.0, lambda: m.nodes[0].charge(10.0))
        m.run()
        util = m.cpu_utilisation()
        assert util[0] == 1.0
        assert util[1] == 0.0
