"""Execution engine: constraints + pending queue (§6.1), become,
dispatcher disciplines, collective broadcast quanta."""

from __future__ import annotations

import pytest

from repro import behavior, disable_when, method
from repro.config import SchedulerParams
from tests.conftest import BoundedBuffer, Counter, make_runtime


class TestSynchronizationConstraints:
    def test_disabled_message_parks_in_pending_queue(self, rt4):
        buf = rt4.spawn(BoundedBuffer, 2, at=0)
        rt4.send(buf, "get")  # empty: disabled
        rt4.run()
        actor = rt4.actor_of(buf)
        assert actor.mailbox.pending_count == 1
        assert rt4.stats.counter("exec.deferred") == 1

    def test_pending_reexamined_after_each_execution(self, rt4):
        buf = rt4.spawn(BoundedBuffer, 2, at=0)
        target, box = rt4.make_collector(from_node=0)
        # get before put: must still return the value once put lands
        kernel = rt4.kernels[0]
        from repro.actors.message import ReplyTarget
        kernel.node.bootstrap(
            lambda: kernel.delivery.send_message(buf, "get", (), reply_to=target)
        )
        rt4.run()
        assert box == []
        rt4.send(buf, "put", "x")
        rt4.run()
        assert box == ["x"]
        assert rt4.actor_of(buf).mailbox.pending_count == 0

    def test_bounded_buffer_full_cycle(self, rt4):
        buf = rt4.spawn(BoundedBuffer, 1, at=0)
        rt4.send(buf, "put", 1)
        rt4.send(buf, "put", 2)   # disabled until a get
        rt4.run()
        assert rt4.state_of(buf).items == [1]
        assert rt4.call(buf, "get") == 1
        rt4.run()
        # the parked put ran once space appeared
        assert rt4.state_of(buf).items == [2]

    def test_chained_enables_drain_in_one_slice(self, rt4):
        """Processing one pending message may enable another; the
        drain loops until no progress (the paper's 'one by one')."""
        buf = rt4.spawn(BoundedBuffer, 10, at=0)
        for _ in range(4):
            rt4.send(buf, "get")
        rt4.run()
        assert rt4.actor_of(buf).mailbox.pending_count == 4
        for i in range(4):
            rt4.send(buf, "put", i)
        rt4.run()
        assert rt4.state_of(buf).items == []
        assert rt4.stats.counter("exec.pending_dispatched") == 4

    def test_constraint_predicate_sees_message(self, rt4):
        @behavior
        class StepGate:
            def __init__(self):
                self.step = 0

            @method
            @disable_when(lambda self, msg: msg.args[0] > self.step)
            def advance(self, ctx, step):
                assert step == self.step
                self.step += 1

        rt4.load_behaviors(StepGate)
        g = rt4.spawn(StepGate, at=0)
        # deliver out of order: 2, 1, 0
        for s in (2, 1, 0):
            rt4.send(g, "advance", s)
        rt4.run()
        assert rt4.state_of(g).step == 3


class TestBecome:
    def test_become_changes_interpretation(self, rt4):
        @behavior
        class Open:
            def __init__(self):
                self.log = []

            @method
            def use(self, ctx):
                self.log.append("open")

            @method
            def close(self, ctx):
                ctx.become(Closed)

        @behavior
        class Closed:
            def __init__(self):
                pass

            @method
            def use(self, ctx):
                raise AssertionError("should not process while closed")

            @method
            def open_(self, ctx):
                ctx.become(Open)

        rt4.load_behaviors(Open, Closed)
        door = rt4.spawn(Open, at=0)
        rt4.send(door, "use")
        rt4.run()
        rt4.send(door, "close")
        rt4.run()
        assert rt4.actor_of(door).behavior.name == "Closed"
        assert rt4.stats.counter("exec.becomes") == 1

    def test_become_target_demotes_static_dispatch(self, rt4):
        """Sends to a behaviour that uses become get a lookup plan."""
        @behavior
        class Chameleon:
            def __init__(self):
                pass

            @method
            def poke(self, ctx):
                pass

            @method
            def morph(self, ctx):
                ctx.become(Chameleon)

        @behavior
        class Keeper:
            def __init__(self):
                self.pet = None

            @method
            def setup(self, ctx):
                self.pet = ctx.new(Chameleon)

            @method
            def touch(self, ctx):
                ctx.send(self.pet, "poke")

        rt4.load_behaviors(Chameleon, Keeper)
        from repro.actors.behavior import behavior_of
        plan = behavior_of(Keeper).compiled.plan_for("touch", "poke")
        assert plan == "lookup"


class TestSchedulingDisciplines:
    def _chain_runtime(self, stack: bool):
        return make_runtime(
            1, scheduler=SchedulerParams(stack_scheduling=stack,
                                         static_dispatch=False)
        )

    def test_lifo_runs_newest_first(self):
        rt = self._chain_runtime(stack=True)
        order = []
        rt.load_behaviors(tasks={
            "mark": lambda ctx, i: order.append(i),
            "spawn_all": lambda ctx: [
                ctx.spawn_task("mark", i) for i in range(3)
            ],
        })
        rt.spawn_task("spawn_all", at=0)
        rt.run()
        assert order == [2, 1, 0]

    def test_fifo_runs_oldest_first(self):
        rt = self._chain_runtime(stack=False)
        order = []
        rt.load_behaviors(tasks={
            "mark": lambda ctx, i: order.append(i),
            "spawn_all": lambda ctx: [
                ctx.spawn_task("mark", i) for i in range(3)
            ],
        })
        rt.spawn_task("spawn_all", at=0)
        rt.run()
        assert order == [0, 1, 2]

    def test_actor_round_robin_fairness(self, rt4):
        """An actor processes one message per slice so peers interleave."""
        a = rt4.spawn(Counter, at=0)
        b = rt4.spawn(Counter, at=0)
        for _ in range(3):
            rt4.send(a, "incr")
            rt4.send(b, "incr")
        rt4.run()
        assert rt4.state_of(a).value == 3
        assert rt4.state_of(b).value == 3


class TestCollectiveBroadcast:
    def test_collective_quantum_charges_less(self):
        from tests.conftest import Counter as C

        def run(collective: bool) -> float:
            rt = make_runtime(
                2,
                scheduler=SchedulerParams(collective_broadcast=collective),
            )
            g = rt.grpnew(C, 16, 0)
            rt.run()
            t0 = rt.now
            rt.broadcast(g, "incr", 1)
            rt.run()
            assert all(rt.state_of(g.member(i)).value == 1 for i in range(16))
            return rt.now - t0

        assert run(collective=True) < run(collective=False)

    def test_group_batch_counter(self, rt4):
        g = rt4.grpnew(Counter, 8, 0)
        rt4.run()
        rt4.broadcast(g, "incr", 2)
        rt4.run()
        assert rt4.stats.counter("exec.group_batches") >= 1
        assert sum(rt4.state_of(g.member(i)).value for i in range(8)) == 16
