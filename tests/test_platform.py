"""The platform seam: factory, interfaces, and the threaded and mp
backends' node/transport/machine primitives."""

from __future__ import annotations

import subprocess
import sys
import os
import threading

import pytest

from repro.config import RuntimeConfig
from repro.errors import ReproError
from repro.hal.dsl import behavior, method
from repro.platform import BACKENDS, make_machine
from repro.platform.base import NodeExecutor, PlatformMachine, Transport
from repro.platform.simbackend import SimMachine
from repro.platform.threaded import ThreadedMachine


# ======================================================================
# factory + config
# ======================================================================
class TestMakeMachine:
    def test_default_backend_is_sim(self):
        m = make_machine(RuntimeConfig(num_nodes=2))
        assert isinstance(m, SimMachine)
        m.shutdown()

    def test_backend_from_config(self):
        m = make_machine(RuntimeConfig(num_nodes=2, backend="threaded"))
        try:
            assert isinstance(m, ThreadedMachine)
        finally:
            m.shutdown()

    def test_explicit_backend_overrides_config(self):
        m = make_machine(RuntimeConfig(num_nodes=2), backend="threaded")
        try:
            assert isinstance(m, ThreadedMachine)
        finally:
            m.shutdown()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError, match="unknown backend"):
            make_machine(RuntimeConfig(num_nodes=2), backend="mpi")

    def test_config_validates_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            RuntimeConfig(backend="mpi")

    def test_registry_names(self):
        assert BACKENDS == ("sim", "threaded", "mp", "asyncio")


class TestProtocolConformance:
    """Both backends satisfy the runtime-checkable platform protocols
    (structural: method presence, not behaviour)."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_machine_and_parts(self, backend):
        m = make_machine(RuntimeConfig(num_nodes=2), backend=backend)
        try:
            assert isinstance(m, PlatformMachine)
            assert isinstance(m.nodes[0], NodeExecutor)
            assert isinstance(m.frontend_node, NodeExecutor)
            assert isinstance(m.network, Transport)
            assert m.frontend_node.node_id == -1
            assert m.num_nodes == 2
        finally:
            m.shutdown()

    def test_feature_flags(self):
        sim = make_machine(RuntimeConfig(num_nodes=2))
        thr = make_machine(RuntimeConfig(num_nodes=2), backend="threaded")
        mpm = make_machine(RuntimeConfig(num_nodes=2), backend="mp")
        try:
            assert sim.deterministic and sim.supports_faults
            assert not thr.deterministic and not thr.supports_faults
            assert not mpm.deterministic and mpm.supports_faults
            assert mpm.counters_exact  # merged per-process books are exact
            assert not sim.distributed and not thr.distributed
            assert mpm.distributed
        finally:
            sim.shutdown()
            thr.shutdown()
            mpm.shutdown()


# ======================================================================
# threaded backend primitives
# ======================================================================
def _threaded(n=2, **kw):
    return ThreadedMachine(RuntimeConfig(num_nodes=n, **kw))


class TestThreadedNode:
    def test_post_now_runs_and_drains(self):
        m = _threaded()
        try:
            hits = []
            m.nodes[0].post_now(hits.append, (1,))
            m.run()
            assert hits == [1]
            assert m.pending == 0
        finally:
            m.shutdown()

    def test_handler_runs_on_worker_thread_serialised(self):
        m = _threaded()
        try:
            seen = []

            def handler(i):
                # in_handler visible from inside; node identity recorded
                seen.append((i, m.nodes[0].in_handler,
                             threading.current_thread().name))

            for i in range(50):
                m.nodes[0].post_now(handler, (i,))
            m.run()
            assert [s[0] for s in seen] == list(range(50))  # FIFO per node
            assert all(s[1] for s in seen)
            assert all(s[2] == "repro-node-0" for s in seen)
        finally:
            m.shutdown()

    def test_timer_fires_and_cancel_prevents(self):
        m = _threaded()
        try:
            fired = []
            node = m.nodes[0]
            node.execute(node.time() + 1_000, lambda: fired.append("a"))
            t = node.execute(node.time() + 2_000, lambda: fired.append("b"))
            t.cancel()
            t.cancel()  # idempotent
            m.run()
            assert fired == ["a"]
            assert t.cancelled
        finally:
            m.shutdown()

    def test_bootstrap_returns_value_and_serialises(self):
        m = _threaded()
        try:
            node = m.nodes[0]
            assert node.bootstrap(lambda: 42) == 42
            assert not node.in_handler
        finally:
            m.shutdown()

    def test_charge_accounts_but_does_not_sleep(self):
        m = _threaded()
        try:
            node = m.nodes[0]

            def work():
                node.charge(5.0)

            node.bootstrap(work)
            assert node.busy_us == 5.0
        finally:
            m.shutdown()

    def test_defer_is_inline(self):
        m = _threaded()
        try:
            order = []
            node = m.nodes[0]

            def handler():
                node.defer(order.append, ("deferred",))
                order.append("after")

            node.post_now(handler)
            m.run()
            assert order == ["deferred", "after"]
        finally:
            m.shutdown()


class TestThreadedTransport:
    def test_unicast_delivers_cross_node(self):
        m = _threaded()
        try:
            got = []
            m.network.unicast(0, 1, 8, got.append, ("hello",), label="test")
            m.run()
            assert got == ["hello"]
            assert m.net_idle()
        finally:
            m.shutdown()

    def test_in_flight_counts_app_messages_not_chatter(self):
        m = _threaded()
        try:
            # Block node 1's worker so messages stay queued.
            gate = threading.Event()
            m.nodes[1].post_now(gate.wait)
            m.network.unicast(0, 1, 8, lambda: None, (), label="deliver_keyed")
            m.network.unicast(0, 1, 8, lambda: None, (), label="steal_req")
            assert m.network.in_flight() == 1  # chatter excluded
            assert not m.net_idle()
            gate.set()
            m.run()
            assert m.net_idle()
        finally:
            m.shutdown()

    def test_rejects_self_send(self):
        from repro.errors import NetworkError
        m = _threaded()
        try:
            with pytest.raises(NetworkError):
                m.network.unicast(0, 0, 8, lambda: None, ())
        finally:
            m.shutdown()


class TestThreadedMachine:
    def test_faults_rejected(self):
        from repro.sim.faults import FaultPlan
        plan = FaultPlan.protocol_chaos(drop=0.1)
        with pytest.raises(ReproError, match="fault injection"):
            ThreadedMachine(RuntimeConfig(num_nodes=2), faults=plan)

    def test_run_stop_when_predicate(self):
        m = _threaded()
        try:
            box = []
            node = m.nodes[0]
            node.execute(node.time() + 500, lambda: box.append(1))
            m.run(stop_when=lambda: bool(box))
            assert box == [1]
        finally:
            m.shutdown()

    def test_run_deadline_returns_with_work_pending(self):
        m = _threaded()
        try:
            node = m.nodes[0]
            # A timer a full minute out: the deadline must win.
            t = node.execute(node.time() + 60_000_000, lambda: None)
            reached = m.run(until=m.clock.now + 5_000)  # 5ms
            assert m.pending == 1
            assert reached >= 5_000
            t.cancel()
            m.run()
        finally:
            m.shutdown()

    def test_events_executed_counts(self):
        m = _threaded()
        try:
            for _ in range(10):
                m.nodes[0].post_now(lambda: None)
                m.nodes[1].post_now(lambda: None)
            m.run()
            assert m.events_executed == 20
        finally:
            m.shutdown()

    def test_shutdown_idempotent_and_joins(self):
        m = _threaded()
        m.shutdown()
        m.shutdown()
        assert not m.nodes[0]._thread.is_alive()


# ======================================================================
# mp backend (process-per-node)
# ======================================================================
@behavior
class _Holder:
    """Minimal remote-callable actor for mp round trips."""

    def __init__(self):
        self.pokes = 0

    @method
    def poke(self, ctx):
        self.pokes += 1
        return self.pokes

    @method
    def take(self, ctx, obj):
        self.pokes += 1


@behavior
class _Relay:
    """Fans messages out to a remote peer: real wire traffic for the
    fault-injection tests (driver commands land locally and never
    cross the mesh)."""

    def __init__(self):
        self.peer = None

    @method
    def set_peer(self, ctx, peer):
        self.peer = peer

    @method
    def fan(self, ctx, n):
        for _ in range(n):
            ctx.send(self.peer, "take", 1)


@behavior
class _Poison:
    """Sends a non-picklable object across the wire on demand."""

    def __init__(self):
        self.peer = None

    @method
    def set_peer(self, ctx, peer):
        self.peer = peer

    @method
    def boom(self, ctx):
        ctx.send(self.peer, "take", threading.Lock())


def _mp_runtime(n=2, **kw):
    from repro.runtime.system import HalRuntime

    return HalRuntime(RuntimeConfig(num_nodes=n, backend="mp", **kw))


class TestMpBackend:
    def test_spawn_call_run_quiesce(self):
        rt = _mp_runtime(2)
        try:
            a = rt.spawn(_Holder, at=0)
            b = rt.spawn(_Holder, at=1)
            rt.send(b, "take", 7)
            rt.run()
            assert rt.call(a, "poke") == 1
            assert rt.call(b, "poke") == 2  # the take counted too
            assert rt.total_actors() == 2
            assert rt.actor_locations() == {a.address: 0, b.address: 1}
            assert rt.quiescent()
        finally:
            rt.close()

    def test_fault_plan_accepted_and_injected(self):
        """mp supports fault plans: the plan ships to the workers,
        each derives a per-node injector, the reliable sublayer
        auto-attaches, and the merged books balance against the
        recorded fault budget (PR 8 lifted the old rejection)."""
        from repro.runtime.system import HalRuntime
        from repro.sim.faults import FaultPlan, FaultRule
        from repro.sim.invariants import check_invariants

        rt = _mp_runtime(2, seed=7)
        try:
            assert rt.machine.fault_plan is None  # no plan → not shipped
        finally:
            rt.close()

        # Deterministic mode: the sender's injector must drop exactly
        # the first two keyed-delivery packets (the retransmit is the
        # same wire kind, so it eats the second drop) — every fan()
        # message still lands.
        plan = FaultPlan(by_kind={"deliver_keyed": FaultRule(drop_count=2)})
        rt = HalRuntime(
            RuntimeConfig(num_nodes=2, backend="mp", seed=7), faults=plan
        )
        try:
            assert rt.machine.fault_plan is plan
            a = rt.spawn(_Relay, at=0)
            b = rt.spawn(_Holder, at=1)
            rt.send(a, "set_peer", b)
            rt.run()
            rt.send(a, "fan", 10)
            rt.run()
            assert rt.call(b, "poke") == 11
            report = check_invariants(rt)
            pk = report["packets"]
            assert pk["dropped"] == 2
            assert pk["sends"] + pk["duplicated"] - pk["dropped"] == (
                pk["delivered"]
            )
            assert rt.stats.counter("rel.retries") >= 2
        finally:
            rt.close()

    def test_non_picklable_wire_payload_is_hard_error(self):
        """An in-process backend would happily pass a Lock by
        reference; on the wire it must fail loudly, not hang."""
        rt = _mp_runtime(2)
        try:
            a = rt.spawn(_Poison, at=0)
            b = rt.spawn(_Holder, at=1)
            rt.send(a, "set_peer", b)
            rt.run()
            rt.send(a, "boom")
            with pytest.raises(ReproError, match="non-picklable"):
                rt.run()
        finally:
            rt.close()

    def test_non_picklable_driver_payload_rejected(self):
        rt = _mp_runtime(2)
        try:
            a = rt.spawn(_Holder, at=0)
            with pytest.raises(ReproError, match="picklable"):
                rt.send(a, "take", threading.Lock())
        finally:
            rt.close()

    def test_white_box_accessors_refused(self):
        rt = _mp_runtime(2)
        try:
            a = rt.spawn(_Holder, at=0)
            with pytest.raises(ReproError):
                rt.kernel(0)
            with pytest.raises(ReproError):
                rt.actor_of(a)
        finally:
            rt.close()

    def test_remote_spawn_and_locate(self):
        rt = _mp_runtime(3)
        try:
            # Issue the creation from node 0, place on node 2 — the
            # alias path crosses the wire.
            ref = rt.spawn_remote(_Holder, at=2, issuing_node=0)
            rt.run()
            assert rt.locate(ref) == 2
        finally:
            rt.close()

    def test_close_idempotent(self):
        rt = _mp_runtime(2)
        rt.close()
        rt.close()


@behavior
class _GroupMember:
    """Group member that records broadcast deliveries."""

    def __init__(self, index=0, size=1):
        self.index = index
        self.hits = 0

    @method
    def bump(self, ctx, k):
        self.hits += k

    @method
    def total(self, ctx):
        return self.hits


class TestMpGroups:
    """grpnew/broadcast routed through the batched wire frames."""

    def test_grpnew_places_members_and_broadcast_reaches_all(self):
        rt = _mp_runtime(3)
        try:
            g = rt.grpnew(_GroupMember, 6, placement="cyclic")
            rt.run()
            assert rt.total_actors() == 6
            rt.broadcast(g, "bump", 5)
            rt.run()
            assert [rt.call(g.member(i), "total") for i in range(6)] == [5] * 6
            assert rt.quiescent()
        finally:
            rt.close()

    def test_broadcast_payload_pickled_once_per_fanout(self):
        """The tree-forward hands one tuple to every child, so the
        payload identity cache must register reuse whenever a node
        forwards to more than one child."""
        rt = _mp_runtime(4)
        try:
            g = rt.grpnew(_GroupMember, 8)
            rt.run()
            rt.broadcast(g, "bump", 1)
            rt.run()
            assert rt.stats.counter("wire.payload_reuse") > 0
        finally:
            rt.close()


class TestMpSocketTransport:
    """The same mp semantics over the UNIX-domain socket mesh, where
    frames arrive as an unbounded byte stream (split/partial reads)."""

    def _runtime(self, n=2, **mp_kw):
        from repro.config import MpParams

        return _mp_runtime(n, mp=MpParams(transport="socket", **mp_kw))

    def test_spawn_send_call_quiesce(self):
        rt = self._runtime(3)
        try:
            a = rt.spawn(_Holder, at=0)
            b = rt.spawn(_Holder, at=2)
            rt.send(b, "take", 7)
            rt.run()
            assert rt.call(a, "poke") == 1
            assert rt.call(b, "poke") == 2
            assert rt.quiescent()
        finally:
            rt.close()

    def test_tiny_batches_force_frame_splits(self):
        """batch_bytes=1 flushes every record as its own frame — the
        worst case for the socket decoder's reassembly."""
        rt = self._runtime(2, batch_bytes=1)
        try:
            a = rt.spawn(_Holder, at=0)
            b = rt.spawn(_Holder, at=1)
            for _ in range(20):
                rt.send(b, "take", a)
            rt.run()
            assert rt.call(b, "poke") == 21
            assert rt.quiescent()
        finally:
            rt.close()

    def test_non_picklable_payload_still_hard_error(self):
        rt = self._runtime(2)
        try:
            a = rt.spawn(_Poison, at=0)
            b = rt.spawn(_Holder, at=1)
            rt.send(a, "set_peer", b)
            rt.run()
            rt.send(a, "boom")
            with pytest.raises(ReproError, match="non-picklable"):
                rt.run()
        finally:
            rt.close()


class TestMpShmTransport:
    """The same mp semantics over shared-memory SPSC rings: no kernel
    copy, readiness by head/tail compare, spin-then-Condition parking."""

    def _runtime(self, n=2, **mp_kw):
        from repro.config import MpParams

        return _mp_runtime(n, mp=MpParams(transport="shm", **mp_kw))

    def test_spawn_send_call_quiesce(self):
        rt = self._runtime(3)
        try:
            a = rt.spawn(_Holder, at=0)
            b = rt.spawn(_Holder, at=2)
            rt.send(b, "take", 7)
            rt.run()
            assert rt.call(a, "poke") == 1
            assert rt.call(b, "poke") == 2
            assert rt.quiescent()
        finally:
            rt.close()

    def test_tiny_ring_forces_chunked_frames(self):
        """A 64-byte ring is far smaller than a single frame: every
        frame must cross in several write_some chunks with the decoder
        reassembling, and full-ring backpressure (writer_wait parking)
        is exercised on every send."""
        rt = self._runtime(2, ring_bytes=64)
        try:
            a = rt.spawn(_Holder, at=0)
            b = rt.spawn(_Holder, at=1)
            for _ in range(20):
                rt.send(b, "take", a)
            rt.run()
            assert rt.call(b, "poke") == 21
            assert rt.quiescent()
        finally:
            rt.close()

    def test_non_picklable_payload_still_hard_error(self):
        rt = self._runtime(2)
        try:
            a = rt.spawn(_Poison, at=0)
            b = rt.spawn(_Holder, at=1)
            rt.send(a, "set_peer", b)
            rt.run()
            rt.send(a, "boom")
            with pytest.raises(ReproError, match="non-picklable"):
                rt.run()
        finally:
            rt.close()

    def test_arena_unlinked_on_shutdown(self):
        """The driver owns the segment: shutdown must close and unlink
        it (a leaked segment would survive in /dev/shm)."""
        from multiprocessing import shared_memory

        rt = self._runtime(2)
        a = rt.spawn(_Holder, at=0)
        rt.run()
        name = rt.machine._arena.name
        rt.close()
        assert rt.machine._arena is None
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_faults_over_shm(self):
        """Fault injection composes with the shm transport: drops are
        retransmitted across the rings and the audit stays green."""
        from repro.config import MpParams
        from repro.runtime.system import HalRuntime
        from repro.sim.faults import FaultPlan, FaultRule
        from repro.sim.invariants import check_invariants

        plan = FaultPlan(by_kind={"deliver_keyed": FaultRule(drop_count=1)})
        rt = HalRuntime(
            RuntimeConfig(
                num_nodes=2, backend="mp", seed=7,
                mp=MpParams(transport="shm"),
            ),
            faults=plan,
        )
        try:
            a = rt.spawn(_Relay, at=0)
            b = rt.spawn(_Holder, at=1)
            rt.send(a, "set_peer", b)
            rt.run()
            rt.send(a, "fan", 8)
            rt.run()
            assert rt.call(b, "poke") == 9
            report = check_invariants(rt)
            assert report["packets"]["dropped"] == 1
        finally:
            rt.close()


class TestMpBatchingQuiescence:
    """Regression: Safra termination detection must count *messages*,
    not frames.  With thresholds far above the workload every frame
    carries many messages; if the ring counted frames the totals could
    balance to zero while messages were still in flight (false
    quiescence) or never balance at all (hang)."""

    def test_quiescence_counts_messages_not_frames(self):
        from repro.config import MpParams

        rt = _mp_runtime(
            2, mp=MpParams(batch_bytes=1 << 20, batch_max_msgs=100_000)
        )
        try:
            a = rt.spawn(_Holder, at=0)
            b = rt.spawn(_Holder, at=1)
            for _ in range(60):
                rt.send(b, "take", a)
            rt.run()
            assert rt.call(b, "poke") == 61
            assert rt.quiescent()
            frames = rt.stats.counter("wire.frames")
            messages = rt.stats.counter("wire.messages")
            assert messages >= 60
            # Batching actually happened: strictly fewer frames than
            # messages, so the equality above could not have held if
            # the counters tracked frames.
            assert 0 < frames < messages
        finally:
            rt.close()


# ======================================================================
# layering lint (satellite: must pass as part of tier-1)
# ======================================================================
def test_layering_lint_passes():
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    script = os.path.join(repo_root, "tools", "check_layering.py")
    proc = subprocess.run(
        [sys.executable, script], capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stderr


def test_layering_lint_catches_violations(tmp_path):
    """The checker actually detects a backend import in a guarded
    package (guards against the lint rotting into a no-op)."""
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tools"
    ))
    try:
        import check_layering
    finally:
        sys.path.pop(0)
    src = tmp_path / "src"
    bad = src / "repro" / "runtime"
    bad.mkdir(parents=True)
    (bad / "evil.py").write_text(
        "from repro.sim.engine import Simulator\n"
        "import repro.platform.threaded\n"
        "import repro.platform.mp\n"
        "from repro.platform.wireformat import FrameEncoder\n"
        "from repro.platform.base import NodeExecutor  # allowed\n"
    )
    problems = check_layering.check(str(src))
    assert len(problems) == 4
    assert "repro.sim.engine" in problems[0]
    assert "repro.platform.threaded" in problems[1]
    assert "repro.platform.mp" in problems[2]
    assert "repro.platform.wireformat" in problems[3]
