"""Property and white-box tests for the binary wire codec
(:mod:`repro.platform.wireformat`): header pack/unpack round trips,
handler-name interning growth, split/partial stream reassembly, and
the framing/flush bookkeeping the mp backend's batching relies on.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetworkError
from repro.platform.base import WirePacket
from repro.platform.wireformat import (
    DEF,
    FrameDecoder,
    FrameEncoder,
    MAX_INTERNED,
    encode_payload,
    iter_messages,
)

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
_handler_names = st.text(
    alphabet=st.characters(codec="utf-8", exclude_categories=("Cs",)),
    min_size=1,
    max_size=40,
)

_payload_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-(2**63), 2**63 - 1)
    | st.floats(allow_nan=False)
    | st.text(max_size=20)
    | st.binary(max_size=20),
    lambda inner: st.tuples(inner, inner) | st.lists(inner, max_size=3),
    max_leaves=6,
)


@st.composite
def packets(draw):
    handler = draw(_handler_names)
    # kind is usually the handler (the common case the codec optimises
    # by sharing the interned id); sometimes distinct.
    kind = handler if draw(st.booleans()) else draw(_handler_names)
    return WirePacket(
        src=draw(st.integers(-1, 127)),
        dst=draw(st.integers(0, 127)),
        handler=handler,
        args=tuple(draw(st.lists(_payload_values, max_size=4))),
        nbytes=draw(st.integers(1, 2**32 - 1)),
        kind=kind,
    )


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------
class TestRoundTrip:
    @given(st.lists(packets(), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_batch_round_trips_in_one_frame(self, pkts):
        enc, dec = FrameEncoder(), FrameDecoder()
        for p in pkts:
            enc.add_message(p)
        assert enc.messages == len(pkts)
        frame = enc.take_frame()
        assert enc.take_frame() is None  # buffer reset
        assert enc.messages == 0
        dec.feed(frame)
        out = list(iter_messages(dec.drain()))
        assert out == pkts
        assert dec.buffered_bytes == 0

    @given(
        st.lists(packets(), min_size=1, max_size=12),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_split_and_partial_reads_reassemble(self, pkts, data):
        """A byte-stream transport may deliver any chunking of any
        number of frames; the decoder must yield exactly the sent
        records, in order, with partial frames held back."""
        enc, dec = FrameEncoder(), FrameDecoder()
        wire = bytearray()
        for i, p in enumerate(pkts):
            enc.add_message(p)
            if data.draw(st.booleans(), label=f"flush after {i}"):
                wire += enc.take_frame()
        last = enc.take_frame()
        if last:
            wire += last
        out = []
        pos = 0
        while pos < len(wire):
            step = data.draw(
                st.integers(1, len(wire) - pos), label="chunk size"
            )
            dec.feed(bytes(wire[pos:pos + step]))
            pos += step
            out.extend(iter_messages(dec.drain()))
        assert out == pkts
        assert dec.buffered_bytes == 0

    @given(packets())
    @settings(max_examples=60, deadline=None)
    def test_control_records_interleave_with_messages(self, p):
        enc, dec = FrameEncoder(), FrameDecoder()
        enc.add_token(7, -3, True)
        enc.add_message(p)
        enc.add_quiesce(9)
        dec.feed(enc.take_frame())
        recs = dec.drain()
        assert recs[0] == ("tok", 7, -3, True)
        assert recs[1] == ("msg", p)
        assert recs[2] == ("qsc", 9)

    def test_header_edge_values(self):
        """The struct header's extremes survive: the frontend's -1
        src, the u32 ceilings, an empty args tuple."""
        p = WirePacket(-1, 32767, "h", (), 2**32 - 1, "h")
        enc, dec = FrameEncoder(), FrameDecoder()
        enc.add_message(p)
        dec.feed(enc.take_frame())
        assert list(iter_messages(dec.drain())) == [p]


# ----------------------------------------------------------------------
# interning
# ----------------------------------------------------------------------
class TestInterning:
    def test_name_defined_once_per_connection(self):
        enc, dec = FrameEncoder(), FrameDecoder()
        p = WirePacket(0, 1, "deliver_keyed", (1,), 8, "deliver_keyed")
        enc.add_message(p)
        first = len(enc.take_frame())
        enc.add_message(p)
        second = len(enc.take_frame())
        # The second frame carries no DEF record: it is smaller by the
        # DEF header + the utf-8 name.
        assert second == first - (struct.calcsize("!BHH") + len("deliver_keyed"))
        dec.feed(b"")  # no-op
        assert dec.interned == ()

    def test_decoder_table_grows_append_only_across_frames(self):
        enc, dec = FrameEncoder(), FrameDecoder()
        for i, name in enumerate(["alpha", "beta", "gamma"]):
            enc.add_message(WirePacket(0, 1, name, (), 8, name))
            dec.feed(enc.take_frame())
            got = list(iter_messages(dec.drain()))
            assert got[0].handler == name
            assert dec.interned == tuple(["alpha", "beta", "gamma"][: i + 1])

    def test_distinct_kind_interned_separately(self):
        enc, dec = FrameEncoder(), FrameDecoder()
        p = WirePacket(0, 1, "deliver", (), 8, "steal_req")
        enc.add_message(p)
        dec.feed(enc.take_frame())
        assert list(iter_messages(dec.drain())) == [p]
        assert dec.interned == ("deliver", "steal_req")

    @given(st.lists(_handler_names, min_size=1, max_size=30, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_tables_stay_in_step(self, names):
        """Sender and receiver assign the same dense ids in emission
        order, whatever the name set."""
        enc, dec = FrameEncoder(), FrameDecoder()
        for name in names:
            enc.add_message(WirePacket(0, 1, name, (), 8, name))
        dec.feed(enc.take_frame())
        got = [m.handler for m in iter_messages(dec.drain())]
        assert got == names
        assert dec.interned == tuple(names)

    def test_intern_overflow_falls_back_to_raw_name_records(self):
        """Crossing MAX_INTERNED must not kill the connection: the
        last id (0xFFFF itself) is still interned normally, and every
        *new* name past it rides a raw-name MSGR record — while
        already-interned names keep their cheap ids."""
        enc, dec = FrameEncoder(), FrameDecoder()
        # A connection that has already interned all but one id, with
        # the decoder's table grown in step (as it would over the real
        # DEF stream).
        enc._ids = {f"h{i}": i for i in range(MAX_INTERNED)}
        dec._names = [f"h{i}" for i in range(MAX_INTERNED)]
        edge = WirePacket(0, 1, "edge", (1,), 8, "edge")
        past = WirePacket(0, 1, "past", (2,), 8, "past")
        mixed = WirePacket(0, 1, "past", (3,), 8, "h7")  # raw + interned kind
        again = WirePacket(0, 1, "h3", (4,), 8, "h3")    # table still live
        for p in (edge, past, mixed, again):
            enc.add_message(p)
        assert enc.messages == 4
        dec.feed(enc.take_frame())
        assert list(iter_messages(dec.drain())) == [edge, past, mixed, again]
        # "edge" took the last id; "past" was never interned.
        assert enc._ids["edge"] == MAX_INTERNED
        assert "past" not in enc._ids
        assert dec.interned[-1] == "edge"

    def test_raw_name_records_round_trip_on_fresh_connection(self):
        """MSGR records reference no table state at all — a decoder
        that has never seen a DEF must still parse them (split reads
        included)."""
        enc, dec = FrameEncoder(), FrameDecoder()
        enc._ids = {f"h{i}": i for i in range(MAX_INTERNED + 1)}
        pkts = [
            WirePacket(0, 1, "alpha", (i, "x" * i), 8 + i, "beta")
            for i in range(4)
        ]
        for p in pkts:
            enc.add_message(p)
        frame = enc.take_frame()
        for b in frame:  # one byte at a time
            dec.feed(bytes([b]))
        assert list(iter_messages(dec.drain())) == pkts
        assert dec.interned == ()


# ----------------------------------------------------------------------
# malformed streams
# ----------------------------------------------------------------------
def _frame(body: bytes) -> bytes:
    return struct.pack("!I", len(body)) + body


class TestMalformed:
    def test_unknown_tag_rejected(self):
        dec = FrameDecoder()
        dec.feed(_frame(b"\xee"))
        with pytest.raises(NetworkError, match="unknown wire record tag"):
            dec.drain()

    def test_out_of_order_def_rejected(self):
        dec = FrameDecoder()
        dec.feed(_frame(struct.pack("!BHH", DEF, 3, 1) + b"x"))
        with pytest.raises(NetworkError, match="out-of-order intern"):
            dec.drain()

    def test_undefined_handler_id_rejected(self):
        enc = FrameEncoder()
        enc.add_message(WirePacket(0, 1, "h", (), 8, "h"))
        frame = bytearray(enc.take_frame())
        # Skip the DEF record so id 0 arrives undefined.
        def_len = struct.calcsize("!BHH") + 1
        body = frame[4 + def_len:]
        dec = FrameDecoder()
        dec.feed(_frame(bytes(body)))
        with pytest.raises(NetworkError, match="undefined handler-name id"):
            dec.drain()

    def test_payload_overrun_rejected(self):
        body = struct.pack("!BhhHHII", 0x01, 0, 1, 0, 0, 8, 99) + b"xy"
        dec = FrameDecoder()
        dec.feed(_frame(body))
        with pytest.raises(NetworkError, match="overruns its frame"):
            dec.drain()

    def test_non_picklable_payload_raises_at_encode(self):
        import threading

        enc = FrameEncoder()
        p = WirePacket(0, 1, "h", (threading.Lock(),), 8, "h")
        with pytest.raises(Exception):
            enc.add_message(p)
        # Nothing half-written: the buffer still seals cleanly.  (The
        # DEF for "h" may have been emitted; a later message reuses it.)
        enc.add_message(WirePacket(0, 1, "h", (1,), 8, "h"))
        dec = FrameDecoder()
        dec.feed(enc.take_frame())
        assert [m.args for m in iter_messages(dec.drain())] == [(1,)]


# ----------------------------------------------------------------------
# payload sharing
# ----------------------------------------------------------------------
def test_prepickled_payload_reused_verbatim():
    """The broadcast path pickles once and hands the same bytes to
    every destination's encoder."""
    args = ("root", "handler", (1, 2, 3))
    payload = encode_payload(args)
    packets_out = []
    for dst in (1, 2, 3):
        enc, dec = FrameEncoder(), FrameDecoder()
        enc.add_message(WirePacket(0, dst, "t", args, 16, "t"), payload)
        dec.feed(enc.take_frame())
        packets_out.extend(iter_messages(dec.drain()))
    assert [p.args for p in packets_out] == [args] * 3
