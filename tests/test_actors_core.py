"""Actor-core data structures: behaviours, mailboxes, constraints,
join continuations, actors."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.actors.actor import Actor
from repro.actors.behavior import (
    Behavior,
    behavior,
    behavior_of,
    is_behavior_class,
    method,
)
from repro.actors.constraints import ConstraintSet, conditions_of, disable_when
from repro.actors.continuations import JoinContinuation
from repro.actors.mailbox import Mailbox
from repro.actors.message import ActorMessage, ReplyTarget
from repro.errors import (
    BehaviorError,
    ConstraintError,
    ContinuationError,
    DeliveryError,
    MigrationError,
)


@behavior
class Sample:
    def __init__(self, x=0):
        self.x = x

    @method
    def bump(self, ctx):
        self.x += 1

    @method
    @disable_when(lambda self, msg: self.x < 0)
    def guarded(self, ctx):
        pass

    def helper(self):
        return self.x


class TestBehavior:
    def test_methods_discovered(self):
        beh = behavior_of(Sample)
        assert set(beh.methods) == {"bump", "guarded"}
        assert beh.name == "Sample"

    def test_helpers_not_invocable(self):
        beh = behavior_of(Sample)
        with pytest.raises(BehaviorError, match="no method"):
            beh.lookup("helper")

    def test_is_behavior_class(self):
        assert is_behavior_class(Sample)
        assert not is_behavior_class(int)
        assert not is_behavior_class(42)

    def test_behavior_of_plain_class_rejected(self):
        class Plain:
            pass
        with pytest.raises(BehaviorError):
            behavior_of(Plain)

    def test_decorating_methodless_class_rejected(self):
        with pytest.raises(BehaviorError, match="no @method"):
            @behavior
            class Empty:
                def __init__(self):
                    pass

    def test_decorating_non_class_rejected(self):
        with pytest.raises(BehaviorError):
            behavior(lambda: None)

    def test_make_state(self):
        beh = behavior_of(Sample)
        state = beh.make_state((5,))
        assert state.x == 5
        with pytest.raises(BehaviorError, match="cannot construct"):
            beh.make_state((1, 2, 3))

    def test_inheritance_brings_parent_methods(self):
        @behavior
        class Child(Sample):
            @method
            def extra(self, ctx):
                pass

        beh = behavior_of(Child)
        assert {"bump", "guarded", "extra"} <= set(beh.methods)
        # parent keeps its own Behavior object
        assert behavior_of(Sample) is not beh


class TestMailbox:
    def msg(self, sel="m"):
        return ActorMessage(sel)

    def test_fifo_order(self):
        mb = Mailbox()
        for i in range(3):
            mb.enqueue(self.msg(f"m{i}"))
        assert [mb.dequeue().selector for _ in range(3)] == ["m0", "m1", "m2"]

    def test_dequeue_empty_raises(self):
        with pytest.raises(DeliveryError):
            Mailbox().dequeue()

    def test_enqueue_front(self):
        mb = Mailbox()
        mb.enqueue(self.msg("a"))
        mb.enqueue_front(self.msg("b"))
        assert mb.dequeue().selector == "b"

    def test_pending_queue_separate(self):
        mb = Mailbox()
        mb.enqueue(self.msg("a"))
        mb.defer(self.msg("p"))
        assert mb.ready_count == 1
        assert mb.pending_count == 1
        assert len(mb) == 2
        assert bool(mb)

    def test_defer_counts_each_message_once(self):
        mb = Mailbox()
        m = self.msg()
        mb.defer(m)
        taken = mb.take_pending()
        mb.defer(taken.popleft())
        assert mb.total_deferred == 1

    def test_drain_empties_both_queues(self):
        mb = Mailbox()
        mb.enqueue(self.msg("a"))
        mb.defer(self.msg("b"))
        out = mb.drain()
        assert [m.selector for m in out] == ["a", "b"]
        assert not mb

    def test_iteration_covers_both_queues(self):
        mb = Mailbox()
        mb.enqueue(self.msg("a"))
        mb.defer(self.msg("b"))
        assert [m.selector for m in mb] == ["a", "b"]


class TestConstraints:
    def test_conditions_attach(self):
        fn = behavior_of(Sample).methods["guarded"]
        assert len(conditions_of(fn)) == 1

    def test_constraint_set_detects_disabled(self):
        beh = behavior_of(Sample)
        state = beh.make_state((0,))
        msg = ActorMessage("guarded")
        assert not beh.constraints.is_disabled("guarded", state, msg)
        state.x = -1
        assert beh.constraints.is_disabled("guarded", state, msg)

    def test_unconstrained_selector(self):
        beh = behavior_of(Sample)
        assert not beh.constraints.has_constraints("bump")
        assert beh.constraints.has_constraints("guarded")
        assert beh.constraints.constrained_selectors == ["guarded"]

    def test_raising_predicate_is_loud(self):
        cs = ConstraintSet({"m": [lambda s, m: 1 / 0]})
        with pytest.raises(ConstraintError, match="raised"):
            cs.is_disabled("m", None, ActorMessage("m"))

    def test_multiple_conditions_or_ed(self):
        cs = ConstraintSet({"m": [lambda s, m: s == 1, lambda s, m: s == 2]})
        msg = ActorMessage("m")
        assert cs.is_disabled("m", 1, msg)
        assert cs.is_disabled("m", 2, msg)
        assert not cs.is_disabled("m", 3, msg)

    def test_non_callable_rejected(self):
        with pytest.raises(ConstraintError):
            disable_when("not callable")


class TestJoinContinuation:
    def test_fill_and_fire(self):
        fired = []
        c = JoinContinuation(1, 2, lambda cont: fired.append(cont.values()))
        assert c.fill(0, "a") is False
        assert c.fill(1, "b") is True
        c.invoke()
        assert fired == [[["a", "b"]][0]]
        assert c.fired

    def test_known_slots_prefilled(self):
        c = JoinContinuation(1, 3, lambda cont: None, known={0: "k"})
        assert c.counter == 2

    def test_double_fill_rejected(self):
        c = JoinContinuation(1, 1, lambda cont: None)
        c.fill(0, 1)
        with pytest.raises(ContinuationError, match="already fired|filled twice"):
            c.fill(0, 2)

    def test_out_of_range_slot(self):
        c = JoinContinuation(1, 1, lambda cont: None)
        with pytest.raises(ContinuationError, match="out of range"):
            c.fill(5, 1)

    def test_premature_invoke_rejected(self):
        c = JoinContinuation(1, 2, lambda cont: None)
        c.fill(0, 1)
        with pytest.raises(ContinuationError, match="slots still empty"):
            c.invoke()
        with pytest.raises(ContinuationError):
            c.values()

    def test_double_invoke_rejected(self):
        c = JoinContinuation(1, 0, lambda cont: None)
        c.invoke()
        with pytest.raises(ContinuationError, match="twice"):
            c.invoke()

    def test_none_is_a_valid_reply(self):
        c = JoinContinuation(1, 1, lambda cont: None)
        assert c.fill(0, None) is True
        assert c.values() == [None]

    @given(st.integers(min_value=1, max_value=12), st.integers(0, 2**32))
    @settings(max_examples=60, deadline=None)
    def test_property_counter_matches_unfilled(self, nslots, seed):
        import random
        rng = random.Random(seed)
        c = JoinContinuation(1, nslots, lambda cont: None)
        order = list(range(nslots))
        rng.shuffle(order)
        for i, slot in enumerate(order):
            completed = c.fill(slot, slot)
            assert c.counter == nslots - i - 1
            assert completed == (i == nslots - 1)
        assert c.values() == list(range(nslots))


class TestActor:
    def make(self):
        beh = behavior_of(Sample)
        return Actor(beh, beh.make_state((0,)), node_id=0)

    def test_become_swaps_behavior_and_state(self):
        a = self.make()

        @behavior
        class Other:
            def __init__(self):
                self.y = 9

            @method
            def m(self, ctx):
                pass

        a.mailbox.enqueue(ActorMessage("bump"))
        a.become(behavior_of(Other), behavior_of(Other).make_state(()))
        assert a.behavior.name == "Other"
        assert a.state.y == 9
        assert a.mailbox.ready_count == 1  # mail survives become

    def test_become_requires_behavior(self):
        with pytest.raises(BehaviorError):
            self.make().become(None, None)

    def test_pack_for_migration(self):
        a = self.make()
        a.mailbox.enqueue(ActorMessage("bump"))
        a.mailbox.defer(ActorMessage("guarded"))
        beh, state, mail = a.pack_for_migration()
        assert beh.name == "Sample"
        assert len(mail) == 2
        assert not a.mailbox

    def test_busy_actor_cannot_pack(self):
        a = self.make()
        a.busy = True
        with pytest.raises(MigrationError):
            a.pack_for_migration()

    def test_ready_flag(self):
        a = self.make()
        assert not a.ready
        a.mailbox.enqueue(ActorMessage("bump"))
        assert a.ready
