"""The capability table is the single source of truth — these tests
fail the build if any consumer drifts from it: machine class flags,
rejection messages, the CLI's trace refusal, and the README matrix.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.config import RuntimeConfig
from repro.errors import ReproError
from repro.platform.capabilities import (
    CAPABILITIES,
    FEATURES,
    backends_supporting,
    capability_table,
    supports,
    unsupported_message,
)

README = pathlib.Path(__file__).resolve().parents[1] / "README.md"


def _machine_class(backend: str):
    if backend == "sim":
        from repro.platform.simbackend import SimMachine

        return SimMachine
    if backend == "threaded":
        from repro.platform.threaded import ThreadedMachine

        return ThreadedMachine
    if backend == "asyncio":
        from repro.platform.asyncio_net import AsyncioMachine

        return AsyncioMachine
    from repro.platform.mp import MpMachine

    return MpMachine


class TestTableShape:
    def test_every_backend_declares_every_capability(self):
        for name, caps in CAPABILITIES.items():
            assert set(caps) == set(FEATURES), name

    def test_backends_supporting_matches_table(self):
        for cap in FEATURES:
            assert backends_supporting(cap) == tuple(
                n for n in CAPABILITIES if CAPABILITIES[n][cap]
            )
            for name in CAPABILITIES:
                assert supports(name, cap) == CAPABILITIES[name][cap]


class TestClassFlagsMatchTable:
    """The machines declare flags; the table must mirror them exactly.
    A new flag or backend has to land in both places to pass."""

    @pytest.mark.parametrize("backend", sorted(CAPABILITIES))
    def test_flags(self, backend):
        cls = _machine_class(backend)
        for cap, expected in CAPABILITIES[backend].items():
            assert getattr(cls, cap) == expected, f"{backend}.{cap}"


class TestRejectionMessages:
    def test_threaded_fault_rejection_uses_canonical_message(self):
        from repro.platform import make_machine
        from repro.sim.faults import FaultPlan, FaultRule

        plan = FaultPlan(by_kind={"deliver_keyed": FaultRule(drop_count=1)})
        config = RuntimeConfig(num_nodes=2, seed=1, backend="threaded")
        with pytest.raises(ReproError) as exc:
            make_machine(config, faults=plan)
        assert str(exc.value) == unsupported_message(
            "threaded", "supports_faults"
        )

    def test_message_names_the_supporting_backends(self):
        msg = unsupported_message("threaded", "supports_faults")
        assert "fault injection" in msg
        assert "--backend sim or mp" in msg
        msg = unsupported_message("mp", "supports_tracing")
        assert "span tracing" in msg
        assert "--backend sim or threaded" in msg

    def test_cli_trace_refuses_mp_with_canonical_message(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["trace", "ping_pong", "--backend", "mp"])
        assert unsupported_message("mp", "supports_tracing") in str(exc.value)


class TestReadmeMatrix:
    def test_readme_embeds_generated_table_verbatim(self):
        """README can only say what ``capability_table()`` renders —
        regenerate the block instead of hand-editing the README."""
        assert capability_table() in README.read_text(encoding="utf-8")
