"""Backend parity: the same scenarios converge to the same final state
on the discrete-event, the real-time threaded, the multiprocessing,
and the asyncio socket-cluster backends.

The threaded and mp backends give no ordering or timing guarantees, so
parity is asserted on *convergent* state only: scenario results
(values, visit counts), final actor counts, and ground-truth actor
locations — never on event order, elapsed time, or steal counts (how
much stealing happens is scheduling-dependent by design).

Stats parity goes further where the protocols are deterministic: for
scenarios without load balancing the full final counter sets must
match exactly across all three backends (the same messages, FIRs and
migrations happen, whatever the interleaving); once work stealing is
on, only the steal-traffic-dependent counters are exempt.
"""

from __future__ import annotations

import pytest

from repro.apps.scenarios import run_scenario

SCENARIO_NAMES = (
    "ping_pong",
    "migration_tour",
    "fibonacci_loadbalance",
    "group_broadcast",
)

#: Scenarios whose message flow is fully determined by the program
#: (no work stealing): every final counter must agree across backends.
SEQUENTIAL_SCENARIOS = ("ping_pong", "migration_tour", "group_broadcast")

#: Counter prefixes whose values depend on how much steal traffic the
#: host scheduler happened to produce (and the replies/bytes it moved).
_STEAL_DEPENDENT = (
    "steal.",
    "net.",
    "am.",
    "calls.remote_replies",
    "lat.",
    "exec.",
    "mailbox.",
)


def _final_state(result):
    """Convergent observables of a finished scenario run
    (backend-neutral: works with in-process kernels and with the mp
    backend's snapshot-merged view)."""
    rt = result.runtime
    summary = {
        k: v for k, v in result.summary.items()
        if k not in ("elapsed_us", "steals")  # timing/scheduling-dependent
    }
    return {
        "summary": summary,
        "actors": rt.total_actors(),
        "locations": rt.actor_locations(),
        "quiescent": rt.quiescent(),
    }


def _stable_counters(rt):
    """Final counters that do not depend on steal-traffic volume."""
    return {
        k: v for k, v in rt.stats.counters.items()
        if not any(k.startswith(p) for p in _STEAL_DEPENDENT)
    }


def _no_wire(counters):
    """Drop the mp backend's transport-internal accounting (frame
    counts, payload-cache hits): it measures the wire path, which the
    in-process backends don't have, not the protocols under parity."""
    return {k: v for k, v in counters.items() if not k.startswith("wire.")}


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_backends_reach_identical_final_state(name):
    sim_res = run_scenario(name, trace=False, backend="sim")
    thr_res = run_scenario(name, trace=False, backend="threaded")
    mp_res = run_scenario(name, trace=False, backend="mp")
    try:
        sim_state = _final_state(sim_res)
        thr_state = _final_state(thr_res)
        mp_state = _final_state(mp_res)
        assert sim_state == thr_state
        assert sim_state == mp_state
        assert sim_state["quiescent"]
    finally:
        sim_res.runtime.close()
        thr_res.runtime.close()
        mp_res.runtime.close()


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_stats_parity_sim_vs_mp(name):
    """Final StatsRegistry counters agree between the sim and the
    merged mp registries: exactly for sequential scenarios, and modulo
    steal-dependent traffic once load balancing is on."""
    sim_res = run_scenario(name, trace=False, backend="sim")
    mp_res = run_scenario(name, trace=False, backend="mp")
    try:
        sim_rt, mp_rt = sim_res.runtime, mp_res.runtime
        if name in SEQUENTIAL_SCENARIOS:
            assert sim_rt.stats.counters == _no_wire(mp_rt.stats.counters)
        else:
            assert _stable_counters(sim_rt) == _no_wire(
                _stable_counters(mp_rt)
            )
    finally:
        sim_res.runtime.close()
        mp_res.runtime.close()


@pytest.mark.parametrize("name", SEQUENTIAL_SCENARIOS)
def test_stats_parity_sim_vs_threaded(name):
    """Sequential scenarios also book identical counters on the
    threaded backend (with stealing the GIL hides lost updates on
    shared cells, so only the mp backend — separate registries, merged
    after the fact — can promise exact books under load)."""
    sim_res = run_scenario(name, trace=False, backend="sim")
    thr_res = run_scenario(name, trace=False, backend="threaded")
    try:
        assert sim_res.runtime.stats.counters == thr_res.runtime.stats.counters
    finally:
        sim_res.runtime.close()
        thr_res.runtime.close()


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_threaded_backend_converges_across_seeds(name):
    """The threaded backend must converge regardless of the host
    scheduler's interleaving; different seeds vary placement/victim
    choices but never the result."""
    for seed in (1, 7):
        res = run_scenario(name, trace=False, backend="threaded", seed=seed)
        try:
            assert res.runtime.quiescent()
            state = _final_state(res)
            assert state["actors"] == len(state["locations"])
        finally:
            res.runtime.close()


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_mp_backend_converges_across_seeds(name):
    """Same convergence promise for the process-per-node backend."""
    for seed in (1, 7):
        res = run_scenario(name, trace=False, backend="mp", seed=seed)
        try:
            assert res.runtime.quiescent()
            state = _final_state(res)
            assert state["actors"] == len(state["locations"])
        finally:
            res.runtime.close()


@pytest.mark.parametrize("name", SEQUENTIAL_SCENARIOS)
def test_asyncio_backend_matches_sim_final_state(name):
    """The socket-cluster backend reaches the sim's exact final state
    (summary, actor count, ground-truth locations).  Counters are not
    compared: the always-attached reliable sublayer books `rel.*`
    traffic no lossless backend has."""
    sim_res = run_scenario(name, trace=False, backend="sim")
    net_res = run_scenario(name, trace=False, backend="asyncio")
    try:
        net_state = _final_state(net_res)
        assert _final_state(sim_res) == net_state
        assert net_state["quiescent"]
    finally:
        sim_res.runtime.close()
        net_res.runtime.close()


def test_asyncio_unix_transport_matches_sim_final_state():
    from repro.config import NetParams

    sim_res = run_scenario("migration_tour", trace=False, backend="sim")
    net_res = run_scenario(
        "migration_tour", trace=False, backend="asyncio",
        net=NetParams(transport="unix"),
    )
    try:
        assert _final_state(sim_res) == _final_state(net_res)
    finally:
        sim_res.runtime.close()
        net_res.runtime.close()
