"""Backend parity: the same scenarios converge to the same final state
on the discrete-event and the real-time threaded backends.

The threaded backend gives no ordering or timing guarantees, so parity
is asserted on *convergent* state only: scenario results (values,
visit counts), final actor counts, and ground-truth actor locations —
never on event order, elapsed time, or steal counts (how much stealing
happens is scheduling-dependent by design).
"""

from __future__ import annotations

import pytest

from repro.apps.scenarios import run_scenario

SCENARIO_NAMES = ("ping_pong", "migration_tour", "fibonacci_loadbalance")


def _final_state(result):
    """Convergent observables of a finished scenario run."""
    rt = result.runtime
    summary = {
        k: v for k, v in result.summary.items()
        if k not in ("elapsed_us", "steals")  # timing/scheduling-dependent
    }
    locations = {}
    for kernel in rt.kernels:
        for desc in kernel.table:
            if desc.is_local and desc.actor is not None and desc.key is not None:
                locations[desc.key] = kernel.node_id
    return {
        "summary": summary,
        "actors": rt.total_actors(),
        "locations": locations,
        "quiescent": rt.quiescent(),
    }


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_backends_reach_identical_final_state(name):
    sim_res = run_scenario(name, trace=False, backend="sim")
    thr_res = run_scenario(name, trace=False, backend="threaded")
    try:
        sim_state = _final_state(sim_res)
        thr_state = _final_state(thr_res)
        assert sim_state == thr_state
        assert sim_state["quiescent"]
    finally:
        sim_res.runtime.close()
        thr_res.runtime.close()


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_threaded_backend_converges_across_seeds(name):
    """The threaded backend must converge regardless of the host
    scheduler's interleaving; different seeds vary placement/victim
    choices but never the result."""
    for seed in (1, 7):
        res = run_scenario(name, trace=False, backend="threaded", seed=seed)
        try:
            assert res.runtime.quiescent()
            state = _final_state(res)
            assert state["actors"] == len(state["locations"])
        finally:
            res.runtime.close()
