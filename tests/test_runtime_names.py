"""Mail addresses, locality descriptors, the per-node name table."""

from __future__ import annotations

import pytest

from repro.errors import NameServiceError
from repro.runtime.names import (
    ActorRef,
    AddrKind,
    DescState,
    LocalityDescriptor,
    MailAddress,
)
from repro.runtime.nametable import NameTable


class TestMailAddress:
    def test_ordinary_home_is_birthplace(self):
        a = MailAddress(AddrKind.ORDINARY, 3, 17)
        assert a.home_node() == 3

    def test_alias_home_is_encoded_creation_node(self):
        a = MailAddress(AddrKind.ALIAS, 0, 5, aux=6)
        assert a.home_node() == 6
        assert a.node == 0  # issuing node

    def test_group_home_is_placement(self):
        a = MailAddress(AddrKind.GROUP, 1, 2, aux=4, home=7)
        assert a.home_node() == 7

    def test_hashable_and_distinct(self):
        a = MailAddress(AddrKind.ORDINARY, 1, 2)
        b = MailAddress(AddrKind.ORDINARY, 1, 2)
        c = MailAddress(AddrKind.ALIAS, 1, 2, aux=3)
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2

    def test_refs_wrap_addresses(self):
        a = MailAddress(AddrKind.ORDINARY, 1, 2)
        assert ActorRef(a).address is a
        assert ActorRef(a) == ActorRef(MailAddress(AddrKind.ORDINARY, 1, 2))


class TestLocalityDescriptor:
    def test_lifecycle(self):
        d = LocalityDescriptor(1, None)
        assert d.state is DescState.REMOTE
        d.set_remote(4)
        assert d.remote_node == 4 and not d.has_cached_addr
        d.set_remote(4, 99)
        assert d.has_cached_addr
        d.set_local(object())
        assert d.is_local and d.remote_node == -1

    def test_transit_clears_actor(self):
        d = LocalityDescriptor(1, None)
        d.set_local(object())
        d.begin_transit(2)
        assert d.state is DescState.IN_TRANSIT
        assert d.actor is None and d.remote_node == 2

    def test_resolving_keeps_guess(self):
        d = LocalityDescriptor(1, None)
        d.set_remote(5, 10)
        d.begin_resolving()
        assert d.state is DescState.RESOLVING
        assert d.remote_node == 5

    def test_negative_remote_rejected(self):
        with pytest.raises(NameServiceError):
            LocalityDescriptor(1, None).set_remote(-1)


class TestNameTable:
    def test_alloc_assigns_unique_addresses(self):
        t = NameTable(0)
        d1, d2 = t.alloc(), t.alloc()
        assert d1.addr != d2.addr
        assert t.by_addr(d1.addr) is d1
        assert len(t) == 2

    def test_bind_and_get(self):
        t = NameTable(0)
        key = MailAddress(AddrKind.ORDINARY, 0, 1)
        d = t.alloc()
        t.bind(key, d)
        assert t.get(key) is d
        assert d.key == key

    def test_alloc_with_key(self):
        t = NameTable(0)
        key = MailAddress(AddrKind.ALIAS, 0, 7, aux=2)
        d = t.alloc(key)
        assert t.get(key) is d

    def test_double_bind_rejected(self):
        t = NameTable(0)
        key = MailAddress(AddrKind.ORDINARY, 0, 1)
        t.alloc(key)
        with pytest.raises(NameServiceError, match="already bound"):
            t.alloc(key)
        with pytest.raises(NameServiceError, match="already bound"):
            t.bind(key, t.alloc())

    def test_rebind_bound_descriptor_rejected(self):
        """Alias promotion onto a descriptor already bound to a
        *different* key must not silently mutate ``desc.key`` — that
        would leave the old ``_by_key`` entry pointing at a descriptor
        whose key no longer matches it."""
        t = NameTable(0)
        alias = MailAddress(AddrKind.ALIAS, 0, 1, aux=2)
        desc = t.alloc(alias)
        ordinary = MailAddress(AddrKind.ORDINARY, 2, 9)
        with pytest.raises(NameServiceError, match="already bound"):
            t.bind(ordinary, desc)
        # The original binding is intact: key still matches the entry.
        assert t.get(alias) is desc
        assert desc.key == alias
        assert t.get(ordinary) is None

    def test_rebind_same_key_after_unbind_is_allowed(self):
        """Re-binding the key a descriptor already holds is a no-op
        rebind, not a corruption (idempotent promotion retries)."""
        t = NameTable(0)
        key = MailAddress(AddrKind.ORDINARY, 0, 1)
        desc = t.alloc()
        t.bind(key, desc)
        del t._by_key[key]  # simulate an unbind (e.g. table repair)
        t.bind(key, desc)
        assert t.get(key) is desc

    def test_missing_lookups(self):
        t = NameTable(0)
        assert t.get(MailAddress(AddrKind.ORDINARY, 9, 9)) is None
        with pytest.raises(NameServiceError, match="no descriptor"):
            t.by_addr(1234)
        assert not t.has_addr(1234)

    def test_local_actors_iteration(self):
        t = NameTable(0)
        d = t.alloc()
        assert list(t.local_actors()) == []
        sentinel = object()
        d.set_local(sentinel)
        assert list(t.local_actors()) == [sentinel]
