"""Topology metrics and broadcast spanning trees, incl. property tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TopologyError
from repro.sim.topology import FatTreeTopology, HypercubeTopology, make_topology


class TestHypercube:
    def test_hops_is_hamming_distance(self):
        t = HypercubeTopology(8)
        assert t.hops(0, 0) == 0
        assert t.hops(0, 7) == 3
        assert t.hops(5, 6) == 2

    def test_out_of_range_rejected(self):
        t = HypercubeTopology(4)
        with pytest.raises(TopologyError):
            t.hops(0, 4)
        with pytest.raises(TopologyError):
            t.hops(-1, 0)

    def test_diameter(self):
        assert HypercubeTopology(8).diameter() == 3
        assert HypercubeTopology(16).diameter() == 4


class TestFatTree:
    def test_same_node_zero(self):
        t = FatTreeTopology(16)
        assert t.hops(3, 3) == 0

    def test_siblings_two_hops(self):
        t = FatTreeTopology(16)
        assert t.hops(0, 1) == 2
        assert t.hops(0, 3) == 2

    def test_cross_subtree_more_hops(self):
        t = FatTreeTopology(16)
        assert t.hops(0, 4) == 4
        assert t.hops(0, 15) == 4

    def test_symmetry(self):
        t = FatTreeTopology(64)
        for a, b in [(0, 63), (5, 7), (12, 48)]:
            assert t.hops(a, b) == t.hops(b, a)


class TestSpanningTree:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 64])
    @pytest.mark.parametrize("root", [0, 1])
    def test_tree_covers_every_node_exactly_once(self, size, root):
        if root >= size:
            pytest.skip("root outside partition")
        t = HypercubeTopology(size)
        seen = {root}
        frontier = [root]
        while frontier:
            node = frontier.pop()
            for child in t.spanning_tree_children(root, node):
                assert child not in seen, "node reached twice"
                seen.add(child)
                frontier.append(child)
        assert seen == set(range(size))

    def test_parent_child_consistency(self):
        t = FatTreeTopology(16)
        for root in (0, 5):
            for me in range(16):
                for child in t.spanning_tree_children(root, me):
                    assert t.spanning_tree_parent(root, child) == me

    def test_root_has_no_parent(self):
        t = HypercubeTopology(8)
        assert t.spanning_tree_parent(3, 3) is None

    def test_tree_depth_is_logarithmic(self):
        t = HypercubeTopology(64)

        def depth(root, me):
            d = 0
            while me != root:
                me = t.spanning_tree_parent(root, me)
                d += 1
            return d

        assert max(depth(0, m) for m in range(64)) <= 6

    @given(
        size=st.integers(min_value=1, max_value=80),
        root_seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_every_tree_is_a_spanning_tree(self, size, root_seed):
        root = root_seed % size
        t = HypercubeTopology(size)
        seen = {root}
        frontier = [root]
        while frontier:
            node = frontier.pop()
            for child in t.spanning_tree_children(root, node):
                assert child not in seen
                seen.add(child)
                frontier.append(child)
        assert seen == set(range(size))
        # and parents agree
        for me in range(size):
            if me != root:
                p = t.spanning_tree_parent(root, me)
                assert me in t.spanning_tree_children(root, p)


class TestFactory:
    def test_make_topology(self):
        assert isinstance(make_topology("fattree", 4), FatTreeTopology)
        assert isinstance(make_topology("hypercube", 4), HypercubeTopology)
        with pytest.raises(TopologyError):
            make_topology("torus", 4)
        with pytest.raises(TopologyError):
            make_topology("fattree", 0)
