"""The AST continuation-splitting frontend (repro.hal.lower): plain-def
methods rewritten into the generator form the runtime executes, the
grouping dependence rule, the structured CompileError diagnostics, and
frontend equivalence (plain-def vs explicit-yield twins must produce
the same continuation structure and the same final state on every
backend)."""

from __future__ import annotations

import ast
import inspect

import pytest

from repro import behavior, method
from repro.actors.behavior import behavior_of
from repro.apps.fibonacci import FibActor, FibActorGen, fib_value
from repro.config import RuntimeConfig
from repro.errors import CompileError
from repro.hal.compiler import compile_behaviors
from repro.hal.lower import is_request_call, lower_method, walk_scope
from repro.runtime.system import HalRuntime


# ----------------------------------------------------------------------
# sample plain-def bodies (module level so their source is on disk)
# ----------------------------------------------------------------------
def single(self, ctx, a):
    x = ctx.request(a, "value")
    return x + 1


def grouped(self, ctx, a, b):
    x = ctx.request(a, "value")
    y = ctx.request(b, "value")
    return x + y


def dependent(self, ctx, a):
    x = ctx.request(a, "value")
    y = ctx.request(a, "combine", x)
    return y


def call_in_arg(self, ctx, a, b):
    x = ctx.request(a, "value")
    y = ctx.request(b, "value", abs(-1))
    return x + y


def expr_stmt(self, ctx, a):
    ctx.request(a, "value")
    return 0


def return_request(self, ctx, a):
    return ctx.request(a, "value")


def return_group(self, ctx, a, b):
    return ctx.request(a, "value"), ctx.request(b, "value")


def explicit_group(self, ctx, a, b):
    x, y = ctx.request(a, "value"), ctx.request(b, "value")
    return x + y


def branchy(self, ctx, a, b, flag):
    if flag:
        x = ctx.request(a, "value")
    else:
        x = ctx.request(b, "value")
    return x


def no_requests(self, ctx, x):
    return x * 2


def already_generator(self, ctx, a):
    v = yield ctx.request(a, "value")
    return v


def in_condition(self, ctx, a):
    if ctx.request(a, "value"):
        return 1
    return 0


def inside_call(self, ctx, a):
    return abs(ctx.request(a, "value"))


def nested_def(self, ctx, a):
    def helper():
        return ctx.request(a, "value")
    return helper()


def mixed_group(self, ctx, a):
    x, y = ctx.request(a, "value"), 3
    return x + y


def arity_group(self, ctx, a, b):
    x, y, z = ctx.request(a, "value"), ctx.request(b, "value")
    return x + y + z


def nested_request(self, ctx, a, b):
    x = ctx.request(a, "combine", ctx.request(b, "value"))
    return x


def make_closure_method():
    secret = 41

    def closing(self, ctx, a):
        v = ctx.request(a, "value")
        return v + secret

    return closing


def lower(fn):
    lm = lower_method("B", fn.__name__, fn)
    assert lm is not None
    return lm


# ----------------------------------------------------------------------
# lowering units
# ----------------------------------------------------------------------
class TestLowering:
    def test_single_request_becomes_one_split(self):
        lm = lower(single)
        assert lm.sites == 1
        assert lm.joins == [(1, False)]
        assert inspect.isgeneratorfunction(lm.fn)
        assert lm.fn.__hal_lowered__

    def test_independent_adjacent_requests_share_a_join(self):
        lm = lower(grouped)
        assert lm.sites == 2
        assert lm.joins == [(2, True)]

    def test_dependent_requests_split_twice(self):
        lm = lower(dependent)
        assert lm.joins == [(1, False), (1, False)]

    def test_effectful_argument_disables_grouping(self):
        # abs(-1) is a call: the second request is not provably
        # effect-free, so it keeps its own split point.
        lm = lower(call_in_arg)
        assert lm.joins == [(1, False), (1, False)]

    def test_expression_statement_request_still_splits(self):
        assert lower(expr_stmt).joins == [(1, False)]

    def test_returned_request(self):
        assert lower(return_request).joins == [(1, False)]

    def test_returned_request_group(self):
        assert lower(return_group).joins == [(2, True)]

    def test_explicit_tuple_group(self):
        assert lower(explicit_group).joins == [(2, True)]

    def test_requests_in_both_branches(self):
        assert lower(branchy).joins == [(1, False), (1, False)]

    def test_no_requests_needs_no_lowering(self):
        assert lower_method("B", "no_requests", no_requests) is None

    def test_generator_frontend_is_left_alone(self):
        assert lower_method("B", "already_generator", already_generator) is None

    def test_lowering_is_idempotent(self):
        lm = lower(single)
        assert lower_method("B", "single", lm.fn) is None

    def test_lowered_linenos_are_absolute(self):
        lm = lower(grouped)
        first = grouped.__code__.co_firstlineno
        yields = [n for n in ast.walk(lm.node) if isinstance(n, ast.Yield)]
        assert yields and all(y.lineno > first for y in yields)

    def test_lowered_fn_is_a_drop_in(self):
        lm = lower(single)
        assert lm.fn.__name__ == single.__name__
        assert lm.fn.__qualname__ == single.__qualname__
        assert lm.fn.__module__ == single.__module__
        assert lm.fn.__code__.co_filename == single.__code__.co_filename

    def test_walk_scope_skips_nested_bodies(self):
        tree = ast.parse(
            "def outer():\n"
            "    a = 1\n"
            "    def inner():\n"
            "        b = 2\n"
            "    return a\n"
        )
        names = {n.id for n in walk_scope(tree.body[0])
                 if isinstance(n, ast.Name)}
        assert "a" in names and "b" not in names

    def test_is_request_call(self):
        req = ast.parse("ctx.request(a, 's')").body[0].value
        create = ast.parse("ctx.request_create(C, 1)").body[0].value
        other = ast.parse("ctx.send(a, 's')").body[0].value
        assert is_request_call(req)
        assert is_request_call(create)
        assert not is_request_call(other)


# ----------------------------------------------------------------------
# diagnostics: message format regressions
# ----------------------------------------------------------------------
def err_of(fn, name=None):
    with pytest.raises(CompileError) as ei:
        lower_method("Bank", name or fn.__name__, fn)
    return ei.value


class TestDiagnostics:
    def test_request_in_condition_rejected(self):
        e = err_of(in_condition)
        assert e.behavior == "Bank"
        assert e.method == "in_condition"
        assert e.lineno == in_condition.__code__.co_firstlineno + 1
        assert f"Bank.in_condition (line {e.lineno}):" in str(e)
        assert "cannot be split into a continuation" in str(e)

    def test_request_inside_call_rejected(self):
        e = err_of(inside_call)
        assert e.lineno == inside_call.__code__.co_firstlineno + 1
        assert "cannot be split into a continuation" in str(e)

    def test_request_in_nested_function_rejected(self):
        e = err_of(nested_def)
        assert "inside a nested function" in str(e)
        assert e.lineno == nested_def.__code__.co_firstlineno + 2

    def test_mixed_group_rejected(self):
        e = err_of(mixed_group)
        assert "malformed grouped request" in str(e)
        assert e.lineno == mixed_group.__code__.co_firstlineno + 1

    def test_group_arity_mismatch_rejected(self):
        e = err_of(arity_group)
        assert "malformed grouped request" in str(e)
        assert "3 targets for 2 grouped requests" in str(e)

    def test_request_inside_request_rejected(self):
        e = err_of(nested_request)
        assert "inside another request's arguments" in str(e)

    def test_closure_rejected(self):
        e = err_of(make_closure_method(), name="closing")
        assert "closes over" in str(e)
        assert e.behavior == "Bank" and e.method == "closing"


# ----------------------------------------------------------------------
# frontend equivalence
# ----------------------------------------------------------------------
def compiled(*classes, strict=True):
    return compile_behaviors(
        {behavior_of(c).name: behavior_of(c) for c in classes}, strict=strict
    )


class TestEquivalence:
    def test_twins_have_identical_continuation_shape(self):
        cp = compiled(FibActor, FibActorGen)
        plain = cp.dependence.continuations[("FibActor", "compute")]
        gen = cp.dependence.continuations[("FibActorGen", "compute")]
        assert plain.shape == gen.shape == ((2, True),)
        assert plain.lowered and not gen.lowered

    def test_twins_get_identical_dispatch_plans(self):
        cp = compiled(FibActor, FibActorGen)
        assert cp.behaviors["FibActor"].plan_for("compute", "compute") == "static"
        assert cp.behaviors["FibActorGen"].plan_for("compute", "compute") == "static"

    @pytest.mark.parametrize("backend", ["sim", "threaded", "mp"])
    def test_twins_reach_identical_final_state(self, backend):
        n = 9
        results = {}
        for cls in (FibActor, FibActorGen):
            rt = HalRuntime(RuntimeConfig(num_nodes=2, seed=7, backend=backend))
            try:
                rt.load_behaviors(cls)
                root = rt.spawn(cls, at=0)
                value = rt.call(root, "compute", n)
                results[cls.__name__] = (value, rt.total_actors())
            finally:
                rt.close()
        assert results["FibActor"] == results["FibActorGen"]
        assert results["FibActor"][0] == fib_value(n)

    def test_lowered_method_runs_on_inline_static_path(self):
        rt = HalRuntime(RuntimeConfig(num_nodes=1, seed=7))
        try:
            rt.load_behaviors(FibActor)
            root = rt.spawn(FibActor, at=0)
            assert rt.call(root, "compute", 8) == fib_value(8)
            assert rt.stats.counter("exec.inline_static") > 0
        finally:
            rt.close()
