"""Unit tests for the fault-injection layer itself: plan validation,
sampling determinism, budget caps, node faults, ledger accounting."""

from __future__ import annotations

import pytest

from repro import FaultInjector, FaultPlan, FaultRule, NodeFault
from repro.errors import ReproError
from repro.sim.faults import PROTOCOL_KINDS
from repro.sim.stats import StatsRegistry


def make_injector(plan, seed=7):
    return FaultInjector(plan, seed, StatsRegistry())


class TestValidation:
    def test_probability_out_of_range(self):
        with pytest.raises(ReproError, match="not in"):
            FaultRule(drop=1.5)
        with pytest.raises(ReproError, match="not in"):
            FaultRule(duplicate=-0.1)

    def test_negative_drop_count(self):
        with pytest.raises(ReproError, match="drop_count"):
            FaultRule(drop_count=-1)

    def test_bad_delay_range(self):
        with pytest.raises(ReproError, match="delay_us"):
            FaultRule(delay_us=(50.0, 10.0))

    def test_node_fault_validation(self):
        with pytest.raises(ReproError, match="slow_factor"):
            NodeFault(slow_factor=0.5)
        with pytest.raises(ReproError, match="non-negative"):
            NodeFault(stall_at_us=-1.0)


class TestPlan:
    def test_protocol_chaos_covers_protocol_kinds(self):
        plan = FaultPlan.protocol_chaos(drop=0.1)
        assert set(plan.by_kind) == set(PROTOCOL_KINDS)
        assert all(r.drop == 0.1 for r in plan.by_kind.values())
        assert not plan.empty

    def test_empty_plan(self):
        assert FaultPlan().empty
        assert not FaultPlan(node_faults={0: NodeFault(slow_factor=2.0)}).empty

    def test_seed_inheritance(self):
        # plan.seed None -> the machine's workload seed drives faults
        inj = make_injector(FaultPlan(), seed=99)
        assert inj.seed == 99
        inj2 = make_injector(FaultPlan(seed=5), seed=99)
        assert inj2.seed == 5


class TestSampling:
    def test_deterministic_replay(self):
        """Two injectors with identical (plan, seed) draw identical
        fault sequences — the whole point of seeded fuzzing."""
        plan = FaultPlan.protocol_chaos(seed=3, drop=0.3, duplicate=0.3,
                                        delay=0.3)
        a, b = make_injector(plan), make_injector(plan)
        rule = plan.by_kind["fir"]
        fates_a = [a.sample(rule, "fir", 0, 1, float(t)) for t in range(200)]
        fates_b = [b.sample(rule, "fir", 0, 1, float(t)) for t in range(200)]
        assert fates_a == fates_b
        assert a.ledger == b.ledger
        assert a.summary() == b.summary()

    def test_drop_count_mode_is_exact(self):
        rule = FaultRule(drop_count=2)
        inj = make_injector(FaultPlan(by_kind={"fir": rule}))
        fates = [inj.sample(rule, "fir", 0, 1, 0.0) for _ in range(5)]
        assert fates[:2] == [[], []]            # first two dropped
        assert fates[2:] == [[0.0]] * 3          # then clean delivery
        assert inj.drops_injected() == 2

    def test_max_drops_budget(self):
        plan = FaultPlan(by_kind={"fir": FaultRule(drop=1.0)}, max_drops=3)
        inj = make_injector(plan)
        rule = plan.by_kind["fir"]
        fates = [inj.sample(rule, "fir", 0, 1, 0.0) for _ in range(10)]
        assert sum(1 for f in fates if not f) == 3
        assert all(f for f in fates[3:])

    def test_duplicate_returns_two_copies(self):
        rule = FaultRule(duplicate=1.0)
        inj = make_injector(FaultPlan(by_kind={"x": rule}))
        fate = inj.sample(rule, "x", 0, 1, 0.0)
        assert len(fate) == 2
        assert fate[1] > fate[0]  # the echo arrives later

    def test_delay_within_range(self):
        rule = FaultRule(delay=1.0, delay_us=(10.0, 20.0))
        inj = make_injector(FaultPlan(by_kind={"x": rule}))
        for _ in range(50):
            (extra,) = inj.sample(rule, "x", 0, 1, 0.0)
            assert 10.0 <= extra <= 20.0

    def test_ledger_records_faults(self):
        rule = FaultRule(drop_count=1)
        inj = make_injector(FaultPlan(by_kind={"fir": rule}))
        inj.sample(rule, "fir", 2, 3, 42.0)
        (ev,) = inj.ledger
        assert (ev.action, ev.kind, ev.src, ev.dst, ev.time_us) == (
            "drop", "fir", 2, 3, 42.0
        )


class TestNodeFaults:
    def test_stall_shift(self):
        plan = FaultPlan(node_faults={
            1: NodeFault(stall_at_us=100.0, stall_for_us=50.0),
        })
        inj = make_injector(plan)
        assert inj.node_faulted(1)
        assert not inj.node_faulted(0)
        assert inj.stall_shift(1, 120.0) == 150.0   # inside -> window end
        assert inj.stall_shift(1, 99.0) == 99.0     # before
        assert inj.stall_shift(1, 150.0) == 150.0   # at end (exclusive)
        assert inj.stall_shift(0, 120.0) == 120.0   # unfaulted node

    def test_slow_factor(self):
        plan = FaultPlan(node_faults={2: NodeFault(slow_factor=3.0)})
        inj = make_injector(plan)
        assert inj.node_faulted(2)
        assert inj.slow_factor(2) == 3.0
        assert inj.slow_factor(0) == 1.0
