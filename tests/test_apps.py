"""Application-level correctness: Fibonacci, Cholesky, systolic matmul,
micro-measurements.  (Performance shapes are asserted in benchmarks/.)"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import cholesky, fibonacci, microbench, systolic


class TestFibonacci:
    def test_ground_truth_helpers(self):
        assert fibonacci.fib_value(10) == 55
        assert fibonacci.fib_calls(33) == 11_405_773  # the paper's count

    @pytest.mark.parametrize("lb", [False, True])
    def test_task_form_correct(self, lb):
        r = fibonacci.run_fib(14, 4, load_balance=lb)
        assert r.value == 377
        assert r.tasks == fibonacci.fib_calls(14)

    def test_actor_form_correct(self):
        r = fibonacci.run_fib(10, 4, load_balance=False, use_actors=True)
        assert r.value == 55

    def test_single_node(self):
        r = fibonacci.run_fib(12, 1, load_balance=False)
        assert r.value == 144
        assert r.steals == 0

    def test_comparator_models_calibrated(self):
        # the paper's own numbers fall out at n=33
        assert fibonacci.cilk_model_us(33) == pytest.approx(73.16e6)
        assert fibonacci.c_model_us(33) == pytest.approx(8.49e6)

    def test_load_balancing_beats_static_at_scale(self):
        slow = fibonacci.run_fib(17, 8, load_balance=False)
        fast = fibonacci.run_fib(17, 8, load_balance=True)
        assert fast.elapsed_us < slow.elapsed_us
        assert fast.steals > 0


class TestCholesky:
    def test_spd_matrix(self):
        a = cholesky.make_spd_matrix(24)
        assert np.allclose(a, a.T)
        assert np.all(np.linalg.eigvalsh(a) > 0)

    @pytest.mark.parametrize("variant", cholesky.VARIANTS)
    def test_variant_factorises_correctly(self, variant):
        r = cholesky.run_cholesky(variant, 24, 4)
        # run_cholesky verifies L @ L.T == A internally; double-check:
        a = cholesky.make_spd_matrix(24)
        assert np.max(np.abs(r.L @ r.L.T - a)) < 1e-6

    def test_p2p_distribution_mode(self):
        r = cholesky.run_cholesky("CP", 24, 4, p2p=True)
        a = cholesky.make_spd_matrix(24)
        assert np.max(np.abs(r.L @ r.L.T - a)) < 1e-6

    def test_local_sync_beats_global_sync(self):
        times = {
            v: cholesky.run_cholesky(v, 48, 8).elapsed_us
            for v in cholesky.VARIANTS
        }
        assert times["CP"] < times["Seq"]
        assert times["CP"] < times["Bcast"]
        assert times["BP"] < times["Seq"]

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            cholesky.run_cholesky("XX", 16, 4)


class TestSystolic:
    def test_block_generation_deterministic(self):
        b1 = systolic.block_of(64, 4, 1, "A", 2, 3)
        b2 = systolic.block_of(64, 4, 1, "A", 2, 3)
        assert np.array_equal(b1, b2)
        assert not np.array_equal(b1, systolic.block_of(64, 4, 1, "B", 2, 3))

    @pytest.mark.parametrize("n,p", [(32, 4), (48, 4), (64, 16)])
    def test_multiplication_correct(self, n, p):
        r = systolic.run_systolic(n, p)
        expect = (
            systolic.assemble(n, int(p ** 0.5), 11, "A")
            @ systolic.assemble(n, int(p ** 0.5), 11, "B")
        )
        assert np.max(np.abs(r.C - expect)) < 1e-8 * n

    def test_non_square_grid_rejected(self):
        with pytest.raises(ValueError, match="square"):
            systolic.run_systolic(32, 8)
        with pytest.raises(ValueError, match="divisible"):
            systolic.run_systolic(33, 4)

    def test_mflops_scale_with_partition(self):
        small = systolic.run_systolic(64, 4)
        big = systolic.run_systolic(64, 16)
        assert big.mflops > small.mflops

    def test_local_sync_defers_early_blocks(self):
        """A block arriving for a future step parks in the pending
        queue until the cell's own step catches up (§6.1)."""
        from repro.config import RuntimeConfig
        from repro.runtime.system import HalRuntime
        rt = HalRuntime(RuntimeConfig(num_nodes=4))
        rt.load(systolic.systolic_program())
        g = rt.grpnew(systolic.BlockActor, 4, 32, 2, 11)
        rt.run()
        cell = rt.actor_of(g.member(0))
        block = systolic.block_of(32, 2, 11, "A", 0, 0)
        # step-1 block while the cell is still at step 0: deferred
        rt.send(g.member(0), "recv_a", 1, block)
        rt.run()
        assert cell.mailbox.pending_count == 1
        assert cell.state.a is None
        assert rt.stats.counter("exec.deferred") == 1


class TestMicrobench:
    def test_paper_anchor_points(self):
        rt = microbench.fresh_runtime(2)
        assert microbench.measure_remote_creation_issue(rt) == pytest.approx(5.83)
        rt = microbench.fresh_runtime(2)
        assert microbench.measure_remote_creation_actual(rt) == pytest.approx(
            20.83, abs=0.5
        )
        rt = microbench.fresh_runtime(2)
        assert microbench.measure_locality_check(rt) < 1.0

    def test_alias_hides_most_of_the_latency(self):
        rt = microbench.fresh_runtime(2)
        issue = microbench.measure_remote_creation_issue(rt)
        rt = microbench.fresh_runtime(2)
        actual = microbench.measure_remote_creation_actual(rt)
        assert actual / issue > 3.0  # paper: 20.83 / 5.83 = 3.57

    def test_static_dispatch_formula(self):
        """Table 3: static dispatch = locality check + invocation."""
        regimes = microbench.measure_invocation_regimes()
        rt = microbench.fresh_runtime(2)
        costs = rt.costs
        assert regimes["static"] == pytest.approx(
            costs.locality_check_total_us + costs.invoke_us
        )
        assert regimes["static"] < regimes["lookup"] < regimes["generic"]

    def test_cached_descriptor_speeds_up_remote_sends(self):
        rt = microbench.fresh_runtime(4)
        cold = microbench.measure_send_remote(rt, warm=False)
        rt = microbench.fresh_runtime(4)
        warm = microbench.measure_send_remote(rt, warm=True)
        assert warm.to_invoke_us < cold.to_invoke_us
