"""Receiver-initiated random-polling load balancing (§7.2)."""

from __future__ import annotations

import pytest

from repro.config import LoadBalanceParams
from tests.conftest import Counter, make_runtime


def lb_runtime(num_nodes=4, **lb_kwargs):
    return make_runtime(
        num_nodes, load_balance=LoadBalanceParams(enabled=True, **lb_kwargs)
    )


class TestStealing:
    def test_idle_nodes_steal_tasks(self):
        rt = lb_runtime(4)
        hits = []
        def chunk(ctx, i):
            ctx.charge(200.0)
            hits.append((ctx.node, i))
        rt.load_behaviors(tasks={"chunk": chunk})
        for i in range(40):
            rt.spawn_task("chunk", i, at=0)
        rt.run()
        assert len(hits) == 40
        assert rt.stats.counter("steal.received") > 0
        nodes_used = {n for n, _ in hits}
        assert len(nodes_used) > 1

    def test_steal_packet_books_balance(self):
        """Every steal-protocol packet — req, grant AND deny — is
        counted symmetrically on both sides.  Pre-fix, ``steal_grant``
        sends were invisible to the proto books, so the conservation
        audit could not see a lost grant."""
        rt = lb_runtime(4)
        rt.load_behaviors(tasks={"chunk": lambda ctx, i: ctx.charge(200.0)})
        for i in range(40):
            rt.spawn_task("chunk", i, at=0)
        rt.run()
        s = rt.stats
        assert s.counter("steal.received") > 0  # at least one task grant
        sent = s.counter("steal.proto_sent")
        recv = s.counter("steal.proto_recv")
        assert sent == recv
        # Sent side decomposes exactly: one req per poll, one deny per
        # refusal, one grant per task handed over (actor grants travel
        # as migrate_arrive and are audited by the migration books).
        assert sent == (
            s.counter("steal.polls")
            + s.counter("steal.denied")
            + s.counter("steal.received")
        )
        # The chatter books — what quiescence detection excludes —
        # cover only the workless req/deny probes, never grants.
        chatter_sent = s.counter("steal.chatter_sent")
        assert chatter_sent == s.counter("steal.polls") + s.counter("steal.denied")
        assert chatter_sent == s.counter("steal.chatter_recv")

    def test_disabled_lb_never_polls(self):
        rt = make_runtime(4)
        rt.load_behaviors(tasks={"chunk": lambda ctx, i: ctx.charge(200.0)})
        for i in range(10):
            rt.spawn_task("chunk", i, at=0)
        rt.run()
        assert rt.stats.counter("steal.polls") == 0

    def test_single_node_never_polls(self):
        rt = lb_runtime(1)
        rt.load_behaviors(tasks={"t": lambda ctx: None})
        rt.spawn_task("t", at=0)
        rt.run()
        assert rt.stats.counter("steal.polls") == 0

    def test_balanced_nodes_deny_steals(self):
        rt = lb_runtime(2, surplus_threshold=100)
        rt.load_behaviors(tasks={"chunk": lambda ctx: ctx.charge(100.0)})
        for _ in range(20):
            rt.spawn_task("chunk", at=0)
        rt.run()
        assert rt.stats.counter("steal.received") == 0
        # threshold too high: everything ran on node 0
        assert rt.machine.nodes[1].busy_us < rt.machine.nodes[0].busy_us

    def test_polls_terminate_when_quiescent(self):
        """The simulation drains: no infinite poll loop."""
        rt = lb_runtime(4, poll_interval_us=10.0)
        rt.load_behaviors(tasks={"t": lambda ctx: ctx.charge(5.0)})
        rt.spawn_task("t", at=0)
        end = rt.run()
        assert rt.quiescent()
        assert end < 1e6  # finished, did not spin for ages

    def test_speedup_from_load_balancing(self):
        """The Table 4 effect in miniature: an imbalanced task pile
        finishes faster with stealing enabled."""
        def run(enabled):
            rt = make_runtime(
                4, load_balance=LoadBalanceParams(enabled=enabled)
            )
            rt.load_behaviors(tasks={"chunk": lambda ctx: ctx.charge(500.0)})
            for _ in range(32):
                rt.spawn_task("chunk", at=0)
            return rt.run()

        assert run(True) < 0.5 * run(False)


class TestActorStealing:
    def test_ready_actors_are_stolen_by_migration(self):
        rt = lb_runtime(2, poll_interval_us=20.0)
        refs = [rt.spawn(Counter, at=0) for _ in range(10)]
        for r in refs:
            for _ in range(10):
                rt.send(r, "incr", from_node=0)
        rt.run()
        assert sum(rt.state_of(r).value for r in refs) == 100
        assert rt.stats.counter("migration.arrived") > 0

    def test_stolen_actor_remains_reachable(self):
        rt = lb_runtime(2, poll_interval_us=20.0)
        refs = [rt.spawn(Counter, at=0) for _ in range(10)]
        for r in refs:
            for _ in range(10):
                rt.send(r, "incr", from_node=0)
        rt.run()
        # post-steal messages go to the new home
        for r in refs:
            rt.send(r, "incr", from_node=1)
        rt.run()
        assert sum(rt.state_of(r).value for r in refs) == 110
