"""Cross-module integration scenarios exercising several protocols at
once: migration under traffic, location transparency end-to-end,
request chains across moving actors, mixed workloads."""

from __future__ import annotations

import pytest

from repro import HalRuntime, RuntimeConfig, behavior, disable_when, method
from repro.config import LoadBalanceParams
from tests.conftest import Counter, EchoServer, Hopper, make_runtime


class TestLocationTransparencyEndToEnd:
    def test_refs_work_identically_wherever_the_actor_is(self):
        """The same ref is used before and after multiple migrations,
        from senders that never learn about the moves."""
        rt = make_runtime(8)
        ref = rt.spawn(Counter, at=0)
        rt.run()
        total = 0
        for dest in (2, 7, 1, 4, 0):
            for src in range(8):
                rt.send(ref, "incr", from_node=src)
                total += 1
            rt.run()
            kernel = rt.kernels[rt.locate(ref)]
            kernel.node.bootstrap(
                lambda k=kernel: k.migration.start(rt.actor_of(ref), dest)
            )
            rt.run()
            assert rt.locate(ref) == dest
        assert rt.state_of(ref).value == total

    def test_request_reply_to_a_moving_server(self):
        rt = make_runtime(8)

        @behavior
        class MovingServer:
            def __init__(self):
                self.served = 0

            @method
            def serve(self, ctx, x):
                self.served += 1
                ctx.migrate((ctx.node + 3) % ctx.num_nodes)
                return x * 2

        rt.load_behaviors(MovingServer)
        server = rt.spawn(MovingServer, at=0)
        for i in range(10):
            src = i % 8
            assert rt.call(server, "serve", i, from_node=src) == 2 * i
        rt.run()  # let the final migration land
        assert rt.state_of(server).served == 10

    def test_ref_passed_through_messages_stays_valid(self):
        rt = make_runtime(4)

        @behavior
        class Registry:
            def __init__(self):
                self.entries = {}

            @method
            def register(self, ctx, name, ref):
                self.entries[name] = ref

            @method
            def poke(self, ctx, name):
                ctx.send(self.entries[name], "incr", 5)

        rt.load_behaviors(Registry)
        reg = rt.spawn(Registry, at=3)
        c = rt.spawn(Counter, at=1)
        rt.send(reg, "register", "c", c, from_node=0)
        rt.run()
        # move the counter; the registry's stale ref must still work
        kernel = rt.kernels[1]
        kernel.node.bootstrap(
            lambda: kernel.migration.start(rt.actor_of(c), 2)
        )
        rt.run()
        rt.send(reg, "poke", "c", from_node=0)
        rt.run()
        assert rt.state_of(c).value == 5


class TestMixedWorkload:
    def test_pipeline_with_constraints_and_requests(self):
        """Producer -> bounded buffer -> consumer, with call/return
        completion notification."""
        rt = make_runtime(4)

        @behavior
        class Buf:
            def __init__(self, cap):
                self.items = []
                self.cap = cap

            @method
            @disable_when(lambda self, msg: len(self.items) >= self.cap)
            def put(self, ctx, x):
                self.items.append(x)

            @method
            @disable_when(lambda self, msg: not self.items)
            def take(self, ctx):
                return self.items.pop(0)

        @behavior
        class Producer:
            def __init__(self):
                pass

            @method
            def produce(self, ctx, buf, n):
                for i in range(n):
                    ctx.send(buf, "put", i)

        @behavior
        class Consumer:
            def __init__(self):
                self.got = []

            @method
            def consume(self, ctx, buf, n):
                for _ in range(n):
                    v = yield ctx.request(buf, "take")
                    self.got.append(v)
                return self.got

        rt.load_behaviors(Buf, Producer, Consumer)
        buf = rt.spawn(Buf, 3, at=1)
        producer = rt.spawn(Producer, at=0)
        consumer = rt.spawn(Consumer, at=2)
        rt.send(producer, "produce", buf, 10)
        got = rt.call(consumer, "consume", buf, 10)
        assert got == list(range(10))

    def test_fan_out_fan_in_across_partition(self):
        rt = make_runtime(8)

        @behavior
        class MapReduce:
            def __init__(self):
                pass

            @method
            def run(self, ctx, n):
                workers = [
                    ctx.new(EchoServer, at=i % ctx.num_nodes) for i in range(n)
                ]
                values = yield [
                    ctx.request(w, "add", i, i) for i, w in enumerate(workers)
                ]
                return sum(values)

        rt.load_behaviors(MapReduce)
        mr = rt.spawn(MapReduce, at=0)
        assert rt.call(mr, "run", 20) == sum(2 * i for i in range(20))

    def test_load_balancing_with_mixed_actors_and_tasks(self):
        rt = make_runtime(4, load_balance=LoadBalanceParams(enabled=True))
        rt.load_behaviors(tasks={"burn": lambda ctx: ctx.charge(300.0)})
        refs = [rt.spawn(Counter, at=0) for _ in range(6)]
        for r in refs:
            for _ in range(4):
                rt.send(r, "incr", from_node=0)
        for _ in range(20):
            rt.spawn_task("burn", at=0)
        rt.run()
        assert sum(rt.state_of(r).value for r in refs) == 24
        assert rt.quiescent()

    def test_big_payloads_with_flow_control_end_to_end(self):
        import numpy as np
        rt = make_runtime(4)
        servers = [rt.spawn(EchoServer, at=i) for i in range(4)]
        rt.run()
        block = np.ones(2048)
        for s in servers[1:]:
            got = rt.call(s, "echo", block, from_node=0)
            assert isinstance(got, np.ndarray)
        assert rt.stats.counter("bulk.completions") >= 3


class TestStress:
    def test_many_actors_many_messages(self):
        rt = make_runtime(8)
        refs = [rt.spawn(Counter, at=i % 8) for i in range(100)]
        for k in range(5):
            for i, r in enumerate(refs):
                rt.send(r, "incr", from_node=(i + k) % 8)
        rt.run()
        assert sum(rt.state_of(r).value for r in refs) == 500

    def test_deep_request_nesting(self):
        rt = make_runtime(4)

        @behavior
        class Nest:
            def __init__(self):
                pass

            @method
            def descend(self, ctx, depth):
                if depth == 0:
                    return 0
                child = ctx.new(Nest, at=(ctx.node + 1) % ctx.num_nodes)
                v = yield ctx.request(child, "descend", depth - 1)
                return v + 1

        rt.load_behaviors(Nest)
        root = rt.spawn(Nest, at=0)
        assert rt.call(root, "descend", 40) == 40
