"""The mini-HAL textual front-end: lexer, parser, code generation,
end-to-end execution, and integration with the analysis pipeline."""

from __future__ import annotations

import pytest

from repro import HalRuntime, RuntimeConfig
from repro.errors import CompileError
from repro.hal.lang import compile_hal, generate_python, parse, tokenize
from repro.hal.lang.codegen import mangle
from repro.hal.lang.parser import read, Symbol


class TestLexer:
    def test_tokens(self):
        toks = tokenize('(foo 1 2.5 "bar" :at)')
        kinds = [t.kind for t in toks]
        assert kinds == ["(", "symbol", "number", "number", "string",
                         "keyword", ")"]
        assert toks[2].value == 1
        assert toks[3].value == 2.5
        assert toks[4].value == "bar"

    def test_comments_ignored(self):
        toks = tokenize("(a) ; comment\n(b)")
        assert [t.value for t in toks if t.kind == "symbol"] == ["a", "b"]

    def test_string_escapes(self):
        toks = tokenize(r'"a\"b"')
        assert toks[0].value == 'a"b'

    def test_unterminated_string(self):
        with pytest.raises(CompileError, match="unterminated"):
            tokenize('"abc')

    def test_positions_tracked(self):
        toks = tokenize("(a\n  b)")
        b = [t for t in toks if t.value == "b"][0]
        assert b.line == 2


class TestReader:
    def test_nesting(self):
        forms = read("(a (b 1) (c (d)))")
        assert len(forms) == 1
        assert isinstance(forms[0][1][0], Symbol)

    def test_unclosed_paren(self):
        with pytest.raises(CompileError, match="unclosed"):
            read("(a (b)")

    def test_stray_close(self):
        with pytest.raises(CompileError, match="unexpected"):
            read(")")


class TestParser:
    def test_behavior_structure(self):
        decls = parse("""
            (defbehavior cell (v)
              (method get () (reply v))
              (method put (x)
                (disable-when (not (= v nil)))
                (set! v x)))
        """)
        assert len(decls) == 1
        d = decls[0]
        assert d.name == "cell"
        assert d.state_vars == ["v"]
        assert [m.name for m in d.methods] == ["get", "put"]
        assert d.methods[1].disable_when is not None

    def test_rejects_unknown_top_level(self):
        with pytest.raises(CompileError, match="unknown top-level"):
            parse("(define x 1)")

    def test_rejects_methodless_behavior(self):
        with pytest.raises(CompileError, match="no methods"):
            parse("(defbehavior empty ())")

    def test_rejects_duplicates(self):
        with pytest.raises(CompileError, match="duplicate"):
            parse("""
                (defbehavior a () (method m () (reply 1)))
                (defbehavior a () (method m () (reply 2)))
            """)

    def test_rejects_empty_program(self):
        with pytest.raises(CompileError, match="empty"):
            parse("  ; nothing\n")


class TestCodegen:
    def test_mangling(self):
        assert mangle("bounded-buffer") == "bounded_buffer"
        assert mangle("empty?") == "empty_p"
        assert mangle("push!") == "push_x"

    def test_unbound_variable_rejected(self):
        with pytest.raises(CompileError, match="unbound variable"):
            generate_python(
                "(defbehavior b () (method m () (reply mystery)))"
            )

    def test_unknown_form_rejected(self):
        with pytest.raises(CompileError, match="unknown form"):
            generate_python(
                "(defbehavior b () (method m () (frobnicate 1)))"
            )

    def test_new_of_unknown_behavior_rejected(self):
        with pytest.raises(CompileError, match="unknown behaviour"):
            generate_python(
                "(defbehavior b () (method m () (reply (new ghost))))"
            )

    def test_request_compiles_to_yield(self):
        text = generate_python("""
            (defbehavior asker ()
              (method go (server)
                (let ((v (request server get)))
                  (reply v))))
        """)
        assert 'yield ctx.request(server, "get")' in text

    def test_generated_source_is_valid_python(self):
        text = generate_python("""
            (defbehavior looper (total)
              (method sum-squares (n)
                (dotimes (i n)
                  (set! total (+ total (* i i))))
                (reply total)))
        """)
        compile(text, "<test>", "exec")


class TestEndToEnd:
    BANK = """
    (defbehavior account (balance)
      (method deposit (amount)
        (set! balance (+ balance amount)))
      (method withdraw (amount)
        (disable-when (< balance (msg-arg 0)))
        (set! balance (- balance amount))
        (reply amount))
      (method query ()
        (reply balance)))

    (defbehavior teller ()
      (method transfer (src dst amount)
        (let ((taken (request src withdraw amount)))
          (send dst deposit taken)
          (reply taken))))
    """

    def boot(self, src, nodes=4):
        program = compile_hal(src, "test-program")
        rt = HalRuntime(RuntimeConfig(num_nodes=nodes))
        rt.load(program)
        classes = {cls.__name__: cls for cls in program.behaviors}
        return rt, classes, program

    def test_bank_program_runs(self):
        rt, classes, _ = self.boot(self.BANK)
        alice = rt.spawn(classes["account"], 100, at=1)
        bob = rt.spawn(classes["account"], 0, at=2)
        teller = rt.spawn(classes["teller"], at=3)
        assert rt.call(teller, "transfer", alice, bob, 30) == 30
        rt.run()
        assert rt.call(alice, "query") == 70
        assert rt.call(bob, "query") == 30

    def test_constraint_guard_works(self):
        rt, classes, _ = self.boot(self.BANK)
        acct = rt.spawn(classes["account"], 10, at=0)
        rt.send(acct, "withdraw", 50)  # parks: insufficient funds
        rt.run()
        assert rt.actor_of(acct).mailbox.pending_count == 1
        rt.send(acct, "deposit", 100)
        rt.run()
        assert rt.call(acct, "query") == 60

    def test_inference_runs_on_generated_code(self):
        _, _, program = self.boot(self.BANK)
        report = program.compiled.report()
        # the teller's request to an account was typed via param flow?
        # at minimum the pipeline ran and produced dispatch entries
        assert "teller" in report
        assert "continuation split" in report

    def test_recursive_distributed_program(self):
        src = """
        (defbehavior tree-sum ()
          (method compute (depth)
            (if (= depth 0)
                (reply 1)
                (let ((l (new tree-sum :at (mod (+ node 1) num-nodes)))
                      (r (new tree-sum :at (mod (+ node 2) num-nodes))))
                  (let ((a (request l compute (- depth 1)))
                        (b (request r compute (- depth 1))))
                    (reply (+ a b 1)))))))
        """
        rt, classes, program = self.boot(src, nodes=4)
        root = rt.spawn(classes["tree_sum"], at=0)
        assert rt.call(root, "compute", 6) == 2 ** 7 - 1
        # the compiler proved it functional and statically dispatched
        from repro.actors.behavior import behavior_of
        assert behavior_of(classes["tree_sum"]).functional

    def test_groups_and_broadcast_from_hal(self):
        src = """
        (defbehavior cell (total index size)
          (method bump (x)
            (set! total (+ total x)))
          (method get ()
            (reply total)))

        (defbehavior fanout ()
          (method run (n)
            (let ((g (grpnew cell n 0)))
              (broadcast g bump 5)
              (reply 1))))
        """
        rt, classes, _ = self.boot(src)
        f = rt.spawn(classes["fanout"], at=0)
        assert rt.call(f, "run", 8) == 1
        rt.run()
        cells = [
            a for k in rt.kernels for a in k.table.local_actors()
            if a.behavior.name == "cell"
        ]
        assert len(cells) == 8
        assert sum(c.state.total for c in cells) == 40

    def test_migration_from_hal(self):
        src = """
        (defbehavior wanderer (hops)
          (method wander ()
            (set! hops (+ hops 1))
            (migrate (mod (+ node 1) num-nodes))
            (reply node)))
        """
        rt, classes, _ = self.boot(src)
        w = rt.spawn(classes["wanderer"], 0, at=0)
        for expected_from in range(4):
            assert rt.call(w, "wander") == expected_from % 4
            rt.run()
        assert rt.locate(w) == 0  # wrapped around the partition
        assert rt.state_of(w).hops == 4
