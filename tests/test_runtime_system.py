"""HalRuntime facade, front-end program loading, console I/O,
multi-program execution."""

from __future__ import annotations

import pytest

from repro import HalProgram, HalRuntime, RuntimeConfig, behavior, method
from repro.errors import DeliveryError, LoadError
from tests.conftest import Counter, EchoServer, make_runtime


class TestRuntimeFacade:
    def test_boot_shape(self):
        rt = HalRuntime(RuntimeConfig(num_nodes=6))
        assert rt.num_nodes == 6
        assert len(rt.kernels) == 6
        assert rt.now == 0.0

    def test_call_roundtrip_and_timeout(self, rt4):
        server = rt4.spawn(EchoServer, at=2)
        assert rt4.call(server, "echo", "x") == "x"
        with pytest.raises(DeliveryError):
            rt4.call(server, "echo", "y", timeout_us=0.5)

    def test_locate_unknown_ref_raises(self, rt4):
        from repro.runtime.names import ActorRef, AddrKind, MailAddress
        with pytest.raises(DeliveryError):
            rt4.locate(ActorRef(MailAddress(AddrKind.ORDINARY, 0, 999)))

    def test_total_actors(self, rt4):
        assert rt4.total_actors() == 0
        for i in range(4):
            rt4.spawn(Counter, at=i)
        assert rt4.total_actors() == 4

    def test_quiescent_tracking(self, rt4):
        assert rt4.quiescent()
        ref = rt4.spawn(Counter, at=3)
        rt4.send(ref, "incr", from_node=0)
        assert not rt4.quiescent()
        rt4.run()
        assert rt4.quiescent()

    def test_deterministic_across_runs(self):
        """Identical configuration -> bit-identical simulated time."""
        def run_once():
            rt = make_runtime(4)
            from repro.apps.fibonacci import fib_program
            rt.load(fib_program())
            target, box = rt.make_collector(0)
            rt.spawn_task("fib", 12, target, 0, at=0)
            rt.run()
            return rt.now, box[0]

        assert run_once() == run_once()

    def test_make_collector(self, rt4):
        target, box = rt4.make_collector(1)
        rt4.kernels[1].node.bootstrap(
            lambda: rt4.kernels[1].reply_router.send_reply(target, "done")
        )
        rt4.run()
        assert box == ["done"]


class TestFrontEnd:
    def make_program(self):
        program = HalProgram("demo")

        @program.behavior
        @behavior
        class Talker:
            def __init__(self):
                pass

            @method
            def say(self, ctx, text):
                ctx.io(text)

        @program.task()
        def shout(ctx, text):
            ctx.io(text.upper())

        @program.entry
        def main(rt, text):
            ref = rt.spawn(Talker, at=1)
            rt.send(ref, "say", text)
            rt.run()
            return text

        return program, Talker

    def test_load_and_run_main(self):
        rt = HalRuntime(RuntimeConfig(num_nodes=2))
        program, Talker = self.make_program()
        rt.load(program)
        assert rt.frontend.loaded_programs == ["demo"]
        assert rt.frontend.run_main("demo", "hello") == "hello"
        assert "hello" in rt.frontend.console_text()
        assert rt.frontend.console[0].node == 1

    def test_tasks_loaded_with_program(self):
        rt = HalRuntime(RuntimeConfig(num_nodes=2))
        program, _ = self.make_program()
        rt.load(program)
        rt.spawn_task("shout", "quiet", at=0)
        rt.run()
        assert "QUIET" in rt.frontend.console_text()

    def test_duplicate_program_rejected(self):
        rt = HalRuntime(RuntimeConfig(num_nodes=2))
        program, _ = self.make_program()
        rt.load(program)
        program2, _ = self.make_program()
        with pytest.raises(LoadError, match="already loaded"):
            rt.load(program2)

    def test_missing_entry_rejected(self):
        rt = HalRuntime(RuntimeConfig(num_nodes=2))
        p = HalProgram("noentry")
        p.behavior(Counter)
        rt.load(p)
        with pytest.raises(LoadError, match="entry"):
            rt.frontend.run_main("noentry")

    def test_unknown_program(self):
        rt = HalRuntime(RuntimeConfig(num_nodes=2))
        with pytest.raises(LoadError):
            rt.frontend.program("ghost")

    def test_load_charges_every_node(self):
        rt = HalRuntime(RuntimeConfig(num_nodes=3))
        program, _ = self.make_program()
        busy_before = [k.node.busy_us for k in rt.kernels]
        rt.load(program)
        for k, before in zip(rt.kernels, busy_before):
            assert k.node.busy_us > before

    def test_program_validation(self):
        p = HalProgram("x")
        with pytest.raises(LoadError):
            p.behavior(int)  # not a @behavior class
        with pytest.raises(LoadError):
            HalProgram("")

    def test_concurrent_programs_share_the_partition(self):
        """Two programs execute on one partition; kernels do not
        discriminate between their actors (§3)."""
        rt = HalRuntime(RuntimeConfig(num_nodes=2))
        p1 = HalProgram("alpha")
        p1.behavior(Counter)
        p2 = HalProgram("beta")
        p2.behavior(EchoServer)
        rt.load(p1)
        rt.load(p2)
        c = rt.spawn(Counter, at=0)
        e = rt.spawn(EchoServer, at=1)
        rt.send(c, "incr", from_node=1)
        assert rt.call(e, "echo", 5) == 5
        rt.run()
        assert rt.state_of(c).value == 1
        assert rt.total_actors() == 2

    def test_behavior_name_collision_across_programs(self):
        rt = HalRuntime(RuntimeConfig(num_nodes=2))

        @behavior
        class Twin:
            def __init__(self):
                pass

            @method
            def m(self, ctx):
                pass

        first = Twin

        @behavior
        class Twin:  # noqa: F811 - deliberate redefinition
            def __init__(self):
                pass

            @method
            def m(self, ctx):
                pass

        p1 = HalProgram("p1")
        p1.behavior(first)
        p2 = HalProgram("p2")
        p2.behavior(Twin)
        rt.load(p1)
        with pytest.raises(LoadError, match="collision"):
            rt.load(p2)
