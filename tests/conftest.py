"""Shared fixtures and behaviours for the test suite."""

from __future__ import annotations

import pytest

from repro import HalRuntime, RuntimeConfig, behavior, method, disable_when


# ----------------------------------------------------------------------
# fault-fuzz knobs (tests/test_fault_fuzz.py)
# ----------------------------------------------------------------------
def pytest_addoption(parser):
    parser.addoption(
        "--faults-seed", type=int, default=0,
        help="base fault seed for the fault-fuzz sweep (replay a CI "
             "failure by passing the seed it printed)",
    )
    parser.addoption(
        "--fuzz-rounds", type=int, default=6,
        help="number of seeds per scenario in the fault-fuzz sweep",
    )


@pytest.fixture(scope="session")
def faults_seed_base(request) -> int:
    return request.config.getoption("--faults-seed")


@pytest.fixture(scope="session")
def fuzz_rounds(request) -> int:
    return request.config.getoption("--fuzz-rounds")


# ----------------------------------------------------------------------
# reusable behaviours
# ----------------------------------------------------------------------
@behavior
class Counter:
    def __init__(self, start=0):
        self.value = start

    @method
    def incr(self, ctx, by=1):
        self.value += by

    @method
    def get(self, ctx):
        return self.value


@behavior
class EchoServer:
    def __init__(self):
        self.calls = 0

    @method
    def echo(self, ctx, x):
        self.calls += 1
        return x

    @method
    def add(self, ctx, a, b):
        self.calls += 1
        return a + b


@behavior
class BoundedBuffer:
    """The classic constraint example: put disabled when full, get
    disabled when empty."""

    def __init__(self, capacity):
        self.items = []
        self.capacity = capacity

    @method
    @disable_when(lambda self, msg: len(self.items) >= self.capacity)
    def put(self, ctx, x):
        self.items.append(x)

    @method
    @disable_when(lambda self, msg: not self.items)
    def get(self, ctx):
        return self.items.pop(0)


@behavior
class Hopper:
    """Migrates on demand."""

    def __init__(self):
        self.trail = []

    @method
    def hop(self, ctx, to):
        self.trail.append(ctx.node)
        ctx.migrate(to)

    @method
    def whereami(self, ctx):
        return ctx.node


# ----------------------------------------------------------------------
# fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def rt4() -> HalRuntime:
    """A small 4-node runtime with the common behaviours loaded."""
    rt = HalRuntime(RuntimeConfig(num_nodes=4))
    rt.load_behaviors(Counter, EchoServer, BoundedBuffer, Hopper)
    return rt


@pytest.fixture
def rt8_traced() -> HalRuntime:
    rt = HalRuntime(RuntimeConfig(num_nodes=8), trace=True)
    rt.load_behaviors(Counter, EchoServer, BoundedBuffer, Hopper)
    return rt


def make_runtime(num_nodes=4, **cfg_kwargs) -> HalRuntime:
    """Helper for tests that need custom configs."""
    rt = HalRuntime(RuntimeConfig(num_nodes=num_nodes, **cfg_kwargs))
    rt.load_behaviors(Counter, EchoServer, BoundedBuffer, Hopper)
    return rt
