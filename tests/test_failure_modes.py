"""Failure injection and error-path behaviour: the library must fail
loudly and specifically, never silently corrupt the simulation."""

from __future__ import annotations

import pytest

from repro import (
    FaultPlan,
    FaultRule,
    HalRuntime,
    ReliabilityParams,
    RuntimeConfig,
    behavior,
    method,
    check_invariants,
)
from repro.errors import (
    BehaviorError,
    DeliveryError,
    HandlerError,
    NameServiceError,
)
from tests.conftest import Counter, EchoServer, Hopper, make_runtime


class TestMethodBodyFailures:
    def test_exception_in_method_surfaces_with_context(self, rt4):
        @behavior
        class Exploder:
            def __init__(self):
                pass

            @method
            def boom(self, ctx):
                raise ValueError("application bug")

        rt4.load_behaviors(Exploder)
        ref = rt4.spawn(Exploder, at=0)
        rt4.send(ref, "boom")
        with pytest.raises(ValueError, match="application bug"):
            rt4.run()

    def test_actor_not_left_busy_after_exception(self, rt4):
        @behavior
        class Flaky:
            def __init__(self):
                self.calls = 0

            @method
            def maybe(self, ctx):
                self.calls += 1
                if self.calls == 1:
                    raise RuntimeError("first call fails")

        rt4.load_behaviors(Flaky)
        ref = rt4.spawn(Flaky, at=0)
        rt4.send(ref, "maybe")
        with pytest.raises(RuntimeError):
            rt4.run()
        assert not rt4.actor_of(ref).busy
        # the actor keeps working afterwards
        rt4.send(ref, "maybe")
        rt4.run()
        assert rt4.state_of(ref).calls == 2

    def test_unknown_selector_is_a_behavior_error(self, rt4):
        ref = rt4.spawn(Counter, at=0)
        rt4.send(ref, "no_such_method")
        with pytest.raises(BehaviorError, match="no method"):
            rt4.run()


class TestProtocolFailures:
    def test_fir_livelock_cap(self):
        """An artificial permanent routing cycle is detected instead of
        spinning forever."""
        from repro.runtime import migration as mig
        rt = make_runtime(4)
        ref = rt.spawn(Counter, at=0)
        rt.run()
        # Fabricate a 2-cycle: node1 thinks node2 has it, node2 thinks
        # node1 does; the actor really sits on node 0 but neither link
        # will ever be repaired because we keep re-breaking it.
        k1, k2 = rt.kernels[1], rt.kernels[2]
        d1 = k1.table.alloc(ref.address)
        d1.set_remote(2)
        d2 = k2.table.alloc(ref.address)
        d2.set_remote(1)
        old_cap = mig.MAX_FIR_RETRIES
        mig.MAX_FIR_RETRIES = 3

        # keep the cycle alive by re-breaking the tables on every event
        def sabotage():
            if d1.remote_node != 2:
                d1.set_remote(2)
            if d2.remote_node != 1:
                d2.set_remote(1)
            d1.state = d1.state.__class__.REMOTE
            d2.state = d2.state.__class__.REMOTE

        try:
            rt.send(ref, "incr", from_node=1)
            with pytest.raises(DeliveryError, match="livelock"):
                rt.run(stop_when=lambda: (sabotage(), False)[1])
        finally:
            mig.MAX_FIR_RETRIES = old_cap

    def test_duplicate_remote_creation_detected(self, rt4):
        kernel = rt4.kernels[1]
        ref = rt4.spawn_remote(Counter, at=1, issuing_node=0)
        rt4.run()
        with pytest.raises(NameServiceError, match="duplicate"):
            kernel.node.bootstrap(
                lambda: kernel.creation.on_create_remote(
                    0, ref.address, "Counter", ()
                )
            )

    def test_missing_handler_is_loud(self, rt4):
        kernel = rt4.kernels[0]
        kernel.node.bootstrap(
            lambda: kernel.endpoint.send(1, "nonexistent_handler", ())
        )
        with pytest.raises(HandlerError, match="no handler"):
            rt4.run()


def _raw_runtime(num_nodes=4, *, faults=None, **cfg_kwargs) -> HalRuntime:
    """Runtime with the reliable sublayer explicitly OFF, so injected
    faults reach the protocol handlers directly and their own recovery
    machinery (watchdogs, dedupe) is what gets exercised."""
    cfg = RuntimeConfig(
        num_nodes=num_nodes,
        reliability=ReliabilityParams(enabled=False),
        **cfg_kwargs,
    )
    rt = HalRuntime(cfg, faults=faults)
    rt.load_behaviors(Counter, EchoServer, Hopper)
    return rt


class TestFaultRecovery:
    """Injected protocol faults must surface as visible retries that
    converge — never as silent hangs or corrupted state."""

    def test_dropped_fir_reply_is_reissued_not_hung(self):
        # Kill exactly the first FIR reply.  Without the reliable
        # sublayer (disabled here) only the FIR watchdog can save the
        # probe: it must re-issue the request and the chase must still
        # find the actor.
        plan = FaultPlan(by_kind={"fir_reply": FaultRule(drop_count=1)})
        rt = _raw_runtime(4, faults=plan, descriptor_caching=False)
        w = rt.spawn(Hopper, at=1)
        rt.call(w, "whereami", from_node=0)  # teach node 0 "@1"
        rt.send(w, "hop", 2, from_node=1)
        rt.run()
        rt.send(w, "hop", 3, from_node=2)
        rt.run()
        # Node 0's cache is stale; the probe's FIR reply gets dropped.
        loc = rt.call(w, "whereami", from_node=0)
        assert loc == 3
        assert rt.stats.counter("faults.dropped_packets") == 1
        assert rt.stats.counter("fir.reissued") >= 1
        check_invariants(rt)

    def test_duplicate_migration_commit_is_idempotent(self):
        # Every migrate_arrive and migrate_ack arrives twice.  The
        # protocol-level dedupe (keyed by (old_node, mig_id)) must
        # absorb the replays: one residency, one trail entry per hop.
        plan = FaultPlan(
            seed=42,
            by_kind={
                "migrate_arrive": FaultRule(duplicate=1.0),
                "migrate_ack": FaultRule(duplicate=1.0),
            },
        )
        rt = _raw_runtime(4, faults=plan)
        h = rt.spawn(Hopper, at=0)
        rt.send(h, "hop", 2, from_node=0)
        rt.run()
        rt.send(h, "hop", 3, from_node=2)
        rt.run()
        assert rt.locate(h) == 3
        assert rt.state_of(h).trail == [0, 2]
        assert rt.stats.counter("migration.dup_arrivals") >= 1
        assert rt.stats.counter("migration.dup_acks") >= 1
        # check_invariants would have caught a duplicated residency.
        check_invariants(rt)

    def test_dropped_migrate_ack_resent_by_handshake_watchdog(self):
        plan = FaultPlan(by_kind={"migrate_ack": FaultRule(drop_count=1)})
        rt = _raw_runtime(4, faults=plan)
        h = rt.spawn(Hopper, at=0)
        rt.send(h, "hop", 2, from_node=0)
        rt.run()
        assert rt.locate(h) == 2
        assert rt.stats.counter("migration.resent") >= 1
        assert rt.stats.counter("migration.dup_arrivals") >= 1
        check_invariants(rt)


class TestConstraintFailures:
    def test_unsatisfiable_constraint_leaves_message_pending(self, rt4):
        @behavior
        class Never:
            def __init__(self):
                pass

            @method
            def blocked(self, ctx):
                raise AssertionError("must never run")

        from repro.actors.constraints import disable_when

        # attach an always-true disabling condition dynamically
        Never.blocked = disable_when(lambda self, msg: True)(
            Never.blocked
        )

        # re-derive the behaviour (constraints were captured at
        # decoration time, so rebuild)
        from repro.actors.behavior import Behavior
        beh = Behavior(Never)
        assert beh.constraints.has_constraints("blocked")

        rt = make_runtime(2)
        rt4.load_behaviors()  # no-op; use fresh runtime below
        from repro.actors.actor import Actor
        kernel = rt.kernels[0]
        kernel.register_behavior(beh)
        ref = kernel.node.bootstrap(
            lambda: kernel.creation.create_local(beh, ())
        )
        rt.send(ref, "blocked")
        rt.run()
        actor = rt.actor_of(ref)
        assert actor.mailbox.pending_count == 1
        assert rt.quiescent()  # parked mail does not hang the machine
