"""Migration + FIR: forwarding chains, relaxed consistency repair,
birthplace caching, in-transit deferral."""

from __future__ import annotations

import pytest

from repro import behavior, method
from repro.errors import MigrationError
from repro.runtime.names import DescState
from tests.conftest import Counter, Hopper, make_runtime


def hop(rt, ref, to, from_node=0):
    rt.send(ref, "hop", to, from_node=from_node)
    rt.run()


class TestBasicMigration:
    def test_actor_moves_and_keeps_state(self, rt8_traced):
        rt = rt8_traced
        ref = rt.spawn(Hopper, at=0)
        hop(rt, ref, 5)
        assert rt.locate(ref) == 5
        assert rt.state_of(ref).trail == [0]
        assert rt.stats.counter("migration.arrived") == 1

    def test_migrate_to_self_is_noop(self, rt4):
        ref = rt4.spawn(Hopper, at=1)
        rt4.send(ref, "hop", 1, from_node=0)
        rt4.run()
        assert rt4.locate(ref) == 1
        assert rt4.stats.counter("migration.started") == 0

    def test_old_node_keeps_forward_pointer(self, rt4):
        ref = rt4.spawn(Hopper, at=0)
        hop(rt4, ref, 3)
        desc = rt4.kernels[0].table.get(ref.address)
        assert desc.state is DescState.REMOTE
        assert desc.remote_node == 3
        assert desc.has_cached_addr  # migrate_ack cached the new addr

    def test_mailbox_travels_with_actor(self):
        rt = make_runtime(4)

        @behavior
        class SlowHopper:
            def __init__(self):
                self.got = []

            @method
            def hop_then_work(self, ctx, to):
                ctx.migrate(to)

            @method
            def work(self, ctx, x):
                self.got.append((ctx.node, x))

        rt.load_behaviors(SlowHopper)
        ref = rt.spawn(SlowHopper, at=0)
        # queue the migration trigger plus trailing work in one burst:
        rt.send(ref, "hop_then_work", 2)
        rt.send(ref, "work", 1)
        rt.send(ref, "work", 2)
        rt.run()
        state = rt.state_of(ref)
        assert [x for _, x in state.got] == [1, 2]
        assert all(node == 2 for node, _ in state.got)

    def test_cannot_migrate_busy_actor(self, rt4):
        ref = rt4.spawn(Hopper, at=0)
        actor = rt4.actor_of(ref)
        actor.busy = True
        with pytest.raises(MigrationError):
            rt4.kernels[0].node.bootstrap(
                lambda: rt4.kernels[0].migration.start(actor, 1)
            )


class TestFirProtocol:
    def test_stale_cache_triggers_fir(self, rt8_traced):
        rt = rt8_traced
        ref = rt.spawn(Hopper, at=0)
        # node 2 learns the location, then the actor moves twice
        assert rt.call(ref, "whereami", from_node=2) == 0
        hop(rt, ref, 4)
        hop(rt, ref, 6)
        fir_before = rt.stats.counter("fir.initiated")
        assert rt.call(ref, "whereami", from_node=2) == 6
        assert rt.stats.counter("fir.initiated") > fir_before

    def test_fir_repairs_every_chain_node(self, rt8_traced):
        rt = rt8_traced
        ref = rt.spawn(Hopper, at=0)
        hop(rt, ref, 3)
        hop(rt, ref, 5)
        # a message routed via the birthplace walks 0 -> 3 -> 5
        rt.send(ref, "whereami", from_node=7)
        rt.run()
        for node in (0, 3):
            desc = rt.kernels[node].table.get(ref.address)
            assert desc.state is DescState.REMOTE
            assert desc.remote_node == 5

    def test_fir_coalesced_for_burst(self, rt8_traced):
        """Multiple undeliverable messages for one actor share one FIR."""
        rt = rt8_traced
        ref = rt.spawn(Hopper, at=0)
        assert rt.call(ref, "whereami", from_node=2) == 0

        # Move away; node 2 still believes node 0.
        hop(rt, ref, 4)
        fir_before = rt.stats.counter("fir.initiated")
        deferred_before = rt.stats.counter("delivery.deferred_at_manager")
        for _ in range(5):
            rt.send(ref, "whereami", from_node=2)
        rt.run()
        # one chase for the burst; the rest of the messages waited on it
        assert rt.stats.counter("fir.initiated") - fir_before == 1
        assert rt.stats.counter("delivery.deferred_at_manager") - deferred_before >= 3

    def test_messages_never_lost_across_many_migrations(self):
        rt = make_runtime(8)
        ref = rt.spawn(Counter, at=0)
        rt.run()

        @behavior
        class Mover:
            def __init__(self):
                pass

            @method
            def move(self, ctx, to):
                ctx.migrate(to)

        # interleave increments from many nodes with migrations
        total = 0
        for round_, to in enumerate((3, 1, 6, 2, 7)):
            for src in range(8):
                rt.send(ref, "incr", 1, from_node=src)
                total += 1
            actor = rt.actor_of(ref)
            kernel = rt.kernels[rt.locate(ref)]
            rt.run()  # drain, then migrate between messages
            kernel = rt.kernels[rt.locate(ref)]
            kernel.node.bootstrap(
                lambda k=kernel: k.migration.start(rt.actor_of(ref), to)
            )
            rt.run()
        assert rt.state_of(ref).value == total

    def test_birthplace_learns_after_each_migration(self, rt8_traced):
        rt = rt8_traced
        ref = rt.spawn(Hopper, at=0)
        hop(rt, ref, 3, from_node=1)
        hop(rt, ref, 6, from_node=1)
        birth_desc = rt.kernels[0].table.get(ref.address)
        assert birth_desc.remote_node == 6
        assert birth_desc.has_cached_addr


class TestInTransitDeferral:
    def test_messages_arriving_mid_transit_are_deferred_not_lost(self):
        # Use a sluggish network so the transit window is wide.
        rt = make_runtime(4)
        ref = rt.spawn(Counter, at=0)
        rt.run()
        kernel = rt.kernels[0]
        actor = rt.actor_of(ref)
        kernel.node.bootstrap(lambda: kernel.migration.start(actor, 3))
        # While the migration message is in flight, pump messages at
        # the old node: they must be deferred and then forwarded.
        for _ in range(4):
            rt.send(ref, "incr", from_node=0)
        rt.run()
        assert rt.locate(ref) == 3
        assert rt.state_of(ref).value == 4
        assert rt.stats.counter("delivery.deferred_at_sender") >= 1


class TestMigrationUnderLoadBalancing:
    def test_actor_stealing_migrates_work(self):
        from repro.config import LoadBalanceParams
        rt = make_runtime(4, load_balance=LoadBalanceParams(enabled=True))
        # Pile actors with queued work onto node 0.
        refs = [rt.spawn(Counter, at=0) for _ in range(12)]
        for r in refs:
            for _ in range(5):
                rt.send(r, "incr", from_node=0)
        rt.run()
        assert sum(rt.state_of(r).value for r in refs) == 60
        # some actors should have been migrated off node 0
        assert rt.stats.counter("migration.arrived") > 0
        homes = {rt.locate(r) for r in refs}
        assert homes != {0}
