"""The message send and delivery algorithm (Fig. 3): locality checks,
descriptor caching, keyed vs direct delivery, deferred flushing."""

from __future__ import annotations

import pytest

from repro import behavior, method
from repro.errors import UnknownActorError
from repro.runtime.names import ActorRef, AddrKind, MailAddress
from tests.conftest import Counter, EchoServer, make_runtime


class TestLocalSend:
    def test_send_to_local_actor(self, rt4):
        ref = rt4.spawn(Counter, at=0)
        rt4.send(ref, "incr", 3, from_node=0)
        rt4.run()
        assert rt4.state_of(ref).value == 3

    def test_locality_check_under_a_microsecond(self, rt4):
        from repro.apps.microbench import measure_locality_check
        rt = make_runtime(2)
        assert measure_locality_check(rt) < 1.0


class TestRemoteSend:
    def test_first_send_goes_keyed_then_cached_direct(self):
        rt = make_runtime(4)
        ref = rt.spawn(Counter, at=2)
        rt.run()
        rt.send(ref, "incr", from_node=0)
        rt.run()
        assert rt.stats.counter("delivery.sent_keyed") >= 1
        direct_before = rt.stats.counter("delivery.sent_direct")
        rt.send(ref, "incr", from_node=0)
        rt.run()
        assert rt.stats.counter("delivery.sent_direct") == direct_before + 1
        assert rt.state_of(ref).value == 2

    def test_caching_disabled_keeps_keyed_sends(self):
        rt = make_runtime(4, descriptor_caching=False)
        ref = rt.spawn(Counter, at=2)
        rt.run()
        for _ in range(3):
            rt.send(ref, "incr", from_node=0)
            rt.run()
        assert rt.stats.counter("delivery.sent_direct") == 0
        assert rt.stats.counter("delivery.sent_keyed") >= 3
        assert rt.state_of(ref).value == 3

    def test_unknown_ordinary_actor_is_an_error(self):
        rt = make_runtime(2)
        bogus = ActorRef(MailAddress(AddrKind.ORDINARY, 1, 9999))
        rt.send(bogus, "incr", from_node=0)
        with pytest.raises(UnknownActorError):
            rt.run()

    def test_sends_from_wrong_guess_reach_home(self):
        """A hand-built ref whose sender has no information routes to
        the home node encoded in the address."""
        rt = make_runtime(8)
        ref = rt.spawn(Counter, at=5)
        rt.run()
        # send from several different nodes, none of which know it
        for src in (1, 2, 7):
            rt.send(ref, "incr", from_node=src)
        rt.run()
        assert rt.state_of(ref).value == 3

    def test_reply_routing_cross_node(self, rt4):
        ref = rt4.spawn(EchoServer, at=3)
        assert rt4.call(ref, "add", 20, 22, from_node=0) == 42


class TestBulkDelivery:
    def test_large_payload_uses_bulk_protocol(self):
        import numpy as np
        rt = make_runtime(2)
        ref = rt.spawn(EchoServer, at=1)
        rt.run()
        big = np.zeros(4096)
        assert rt.call(ref, "echo", big, from_node=0) is not None
        assert rt.stats.counter("delivery.bulk") >= 1
        assert rt.stats.counter("bulk.completions") >= 1

    def test_small_payload_avoids_bulk(self):
        rt = make_runtime(2)
        ref = rt.spawn(EchoServer, at=1)
        rt.run()
        rt.call(ref, "echo", 1, from_node=0)
        assert rt.stats.counter("delivery.bulk") == 0


class TestStaticDispatch:
    def test_compiler_plan_enables_inline_invocation(self):
        rt = make_runtime(2)

        @behavior
        class Caller:
            def __init__(self):
                self.friend = None

            @method
            def setup(self, ctx):
                self.friend = ctx.new(Counter)

            @method
            def go(self, ctx):
                ctx.send(self.friend, "incr", 2)

        rt.load_behaviors(Caller)
        c = rt.spawn(Caller, at=0)
        rt.send(c, "setup")
        rt.run()
        before = rt.stats.counter("exec.inline_static")
        rt.send(c, "go")
        rt.run()
        assert rt.stats.counter("exec.inline_static") == before + 1
        assert rt.state_of(rt.state_of(c).friend).value == 2

    def test_static_dispatch_disabled_by_config(self):
        rt = make_runtime(2)
        cfg = rt.config.with_(scheduler=rt.config.scheduler.__class__(
            static_dispatch=False))
        from repro import HalRuntime
        rt = HalRuntime(cfg)

        @behavior
        class Caller2:
            def __init__(self):
                self.friend = None

            @method
            def setup(self, ctx):
                self.friend = ctx.new(Counter)

            @method
            def go(self, ctx):
                ctx.send(self.friend, "incr")

        rt.load_behaviors(Counter, Caller2)
        c = rt.spawn(Caller2, at=0)
        rt.send(c, "setup")
        rt.send(c, "go")
        rt.run()
        assert rt.stats.counter("exec.inline_static") == 0
        assert rt.state_of(rt.state_of(c).friend).value == 1

    def test_inline_depth_bounded(self):
        """Deep synchronous send chains fall back to the buffered path
        instead of blowing the stack (compiler-controlled stack-based
        scheduling, §6.3)."""
        rt = make_runtime(1)

        @behavior
        class Chain:
            def __init__(self):
                self.next = None
                self.hits = 0

            @method
            def build(self, ctx, k):
                if k > 0:
                    self.next = ctx.new(Chain)
                    ctx.send(self.next, "build", k - 1)

            @method
            def fire(self, ctx):
                self.hits += 1
                if self.next is not None:
                    ctx.send(self.next, "fire")

        rt.load_behaviors(Chain)
        head = rt.spawn(Chain, at=0)
        rt.send(head, "build", 200)
        rt.run()
        rt.send(head, "fire")
        rt.run()
        fired = sum(
            a.state.hits for k in rt.kernels for a in k.table.local_actors()
            if a.behavior.name == "Chain"
        )
        assert fired == 201
        assert rt.stats.counter("exec.inline_static") > 0
        assert rt.stats.counter("exec.inline_depth_overflow") >= 1
