"""Adaptive quadrature app + NOW platform preset."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import NetworkParams, RuntimeConfig
from repro.apps.quadrature import (
    run_quadrature,
    spiky,
    spiky_integral,
)


class TestIntegrand:
    def test_spike_dominates_near_center(self):
        assert spiky(0.37) > 100 * abs(spiky(0.9))

    @given(
        a=st.floats(0.0, 0.5),
        width=st.floats(1e-4, 1e-1),
    )
    @settings(max_examples=50, deadline=None)
    def test_closed_form_matches_numeric(self, a, width):
        b = a + 0.25
        # crude but independent numeric check
        n = 20001
        h = (b - a) / (n - 1)
        xs = [a + i * h for i in range(n)]
        trap = h * (sum(spiky(x, width=width) for x in xs)
                    - 0.5 * (spiky(a, width=width) + spiky(b, width=width)))
        exact = spiky_integral(a, b, width=width)
        # the spike may or may not be inside [a, b]; tolerance scales
        # with the integrand's magnitude
        assert abs(trap - exact) < 1e-2 * max(1.0, abs(exact))


class TestQuadrature:
    def test_result_matches_closed_form(self):
        r = run_quadrature(4, load_balance=True)
        assert r.error < 1e-6

    def test_static_placement_also_correct(self):
        r = run_quadrature(4, load_balance=False)
        assert r.error < 1e-6
        assert r.steals == 0

    def test_stealing_helps_the_irregular_tree(self):
        static = run_quadrature(8, load_balance=False)
        lb = run_quadrature(8, load_balance=True)
        assert lb.elapsed_us < static.elapsed_us
        assert lb.steals > 0

    def test_tolerance_controls_work(self):
        coarse = run_quadrature(2, tol=1e-4, load_balance=False)
        fine = run_quadrature(2, tol=1e-9, load_balance=False)
        assert fine.tasks > coarse.tasks
        assert fine.error <= coarse.error * 10


class TestNowPreset:
    def test_preset_values(self):
        now = NetworkParams.now_atm()
        cm5 = NetworkParams.cm5()
        assert now.base_latency_us > 5 * cm5.base_latency_us
        assert now.inject_us_per_byte > cm5.inject_us_per_byte
        assert cm5 == NetworkParams()

    def test_workloads_run_on_now(self):
        cfg = RuntimeConfig(num_nodes=4, network=NetworkParams.now_atm())
        r = run_quadrature(4, load_balance=False, config=cfg)
        assert r.error < 1e-6

    def test_now_is_slower_for_chatty_work(self):
        from tests.conftest import EchoServer
        from repro.runtime.system import HalRuntime

        def ping_time(net):
            rt = HalRuntime(RuntimeConfig(num_nodes=2, network=net))
            rt.load_behaviors(EchoServer)
            server = rt.spawn(EchoServer, at=1)
            rt.run()
            t0 = rt.now
            for i in range(10):
                rt.call(server, "echo", i, from_node=0)
            return rt.now - t0

        assert ping_time(NetworkParams.now_atm()) > 2 * ping_time(NetworkParams.cm5())
