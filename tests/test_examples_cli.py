"""The examples and the command-line interface stay runnable."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.cli import main

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "alice=60, bob=50" in out
        assert "migrated to node 7" in out

    def test_fibonacci(self):
        out = run_example("fibonacci_loadbalance.py", "16", "4")
        assert "dynamic load balancing" in out
        assert "steals" in out

    def test_cholesky(self):
        out = run_example("cholesky_pipeline.py", "48", "4")
        assert "local sync" in out and "global sync" in out
        assert "faster than" in out

    def test_systolic(self):
        out = run_example("systolic_matmul.py", "64", "4")
        assert "MFlops" in out

    def test_migration_tour(self):
        out = run_example("migration_tour.py", "4")
        assert "FIR chases" in out
        assert "migrations   : 3" in out

    def test_adaptive_quadrature(self):
        out = run_example("adaptive_quadrature.py", "4")
        assert "closed form" in out
        assert "faster" in out

    def test_hal_language(self):
        out = run_example("hal_language.py")
        assert "pi(1000) = 168" in out
        assert "static" in out  # the compiler report printed plans


class TestCli:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "5.83" in out and "20.83" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "static" in out and "generic" in out

    def test_table4_small(self, capsys):
        assert main(["table4", "--n", "12", "--partitions", "1,4"]) == 0
        out = capsys.readouterr().out
        assert "Fibonacci(12)" in out

    def test_table5_small(self, capsys):
        assert main(["table5", "--n", "64", "--partitions", "4"]) == 0
        out = capsys.readouterr().out
        assert "MFlops" in out

    def test_table1_small(self, capsys):
        assert main(["table1", "--n", "32", "--partitions", "4"]) == 0
        out = capsys.readouterr().out
        assert "Cholesky" in out and "Bcast" in out

    def test_compile_report(self, capsys):
        assert main(["compile-report"]) == 0
        out = capsys.readouterr().out
        assert "FibActor [functional]" in out

    def test_compile_verb_report(self, capsys):
        assert main(["compile", "fibonacci_loadbalance"]) == 0
        out = capsys.readouterr().out
        assert "send 'compute' -> static" in out
        assert "(lowered plain-def)" in out
        assert "plans: 1 static / 0 lookup / 0 generic" in out

    def test_compile_verb_json(self, capsys):
        import json

        assert main(["compile", "ping_pong", "--json"]) == 0
        d = json.loads(capsys.readouterr().out)
        assert d["behaviors"]["Referee"]["lowered_methods"] == ["tally"]
        assert d["plan_counts"]["generic"] >= 1

    def test_compile_verb_unknown_scenario(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["compile", "frobnicate"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
