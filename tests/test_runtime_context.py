"""The Context API surface: identity, environment, error paths,
simulated compute, console I/O."""

from __future__ import annotations

import pytest

from repro import behavior, method
from repro.errors import BehaviorError, MigrationError, ReproError
from tests.conftest import Counter, make_runtime


class TestIdentityAndEnvironment:
    def test_me_node_num_nodes_now(self, rt4):
        seen = {}

        @behavior
        class Introspector:
            def __init__(self):
                pass

            @method
            def look(self, ctx):
                seen["me"] = ctx.me
                seen["node"] = ctx.node
                seen["num_nodes"] = ctx.num_nodes
                seen["now"] = ctx.now

        rt4.load_behaviors(Introspector)
        ref = rt4.spawn(Introspector, at=2)
        rt4.send(ref, "look")
        rt4.run()
        assert seen["me"] == ref
        assert seen["node"] == 2
        assert seen["num_nodes"] == 4
        assert seen["now"] > 0

    def test_self_send_via_me(self, rt4):
        @behavior
        class SelfTalker:
            def __init__(self):
                self.count = 0

            @method
            def again(self, ctx, n):
                self.count += 1
                if n > 0:
                    ctx.send(ctx.me, "again", n - 1)

        rt4.load_behaviors(SelfTalker)
        ref = rt4.spawn(SelfTalker, at=1)
        rt4.send(ref, "again", 5)
        rt4.run()
        assert rt4.state_of(ref).count == 6

    def test_task_context_has_no_self(self, rt4):
        errors = []

        def probe(ctx):
            try:
                _ = ctx.me
            except BehaviorError as exc:
                errors.append(str(exc))

        rt4.load_behaviors(tasks={"probe": probe})
        rt4.spawn_task("probe", at=0)
        rt4.run()
        assert errors and "task" in errors[0]


class TestChargesAndIo:
    def test_charge_advances_sim_clock(self, rt4):
        @behavior
        class Burner:
            def __init__(self):
                pass

            @method
            def burn(self, ctx):
                ctx.charge(123.0)

        rt4.load_behaviors(Burner)
        ref = rt4.spawn(Burner, at=0)
        before = rt4.kernels[0].node.busy_us
        rt4.send(ref, "burn")
        rt4.run()
        assert rt4.kernels[0].node.busy_us - before > 123.0

    def test_flops_use_cost_model_rate(self, rt4):
        @behavior
        class FlopBurner:
            def __init__(self):
                pass

            @method
            def burn(self, ctx):
                ctx.flops(1000)

        rt4.load_behaviors(FlopBurner)
        ref = rt4.spawn(FlopBurner, at=1)
        node = rt4.kernels[1].node
        before = node.busy_us
        rt4.send(ref, "burn", from_node=1)
        rt4.run()
        assert node.busy_us - before >= 1000 * rt4.costs.flop_us

    def test_io_reaches_frontend_console(self, rt4):
        @behavior
        class Printer:
            def __init__(self):
                pass

            @method
            def p(self, ctx, text):
                ctx.io(text)

        rt4.load_behaviors(Printer)
        ref = rt4.spawn(Printer, at=3)
        rt4.send(ref, "p", "output line")
        rt4.run()
        assert "output line" in rt4.frontend.console_text()
        assert rt4.frontend.console[0].node == 3


class TestErrorPaths:
    def test_migrate_to_bad_node(self, rt4):
        @behavior
        class BadMover:
            def __init__(self):
                pass

            @method
            def go(self, ctx):
                ctx.migrate(99)

        rt4.load_behaviors(BadMover)
        ref = rt4.spawn(BadMover, at=0)
        rt4.send(ref, "go")
        with pytest.raises(MigrationError, match="no such node"):
            rt4.run()

    def test_new_at_bad_node(self, rt4):
        @behavior
        class BadCreator:
            def __init__(self):
                pass

            @method
            def go(self, ctx):
                ctx.new(Counter, at=42)

        rt4.load_behaviors(BadCreator)
        ref = rt4.spawn(BadCreator, at=0)
        rt4.send(ref, "go")
        with pytest.raises(ReproError, match="no such node"):
            rt4.run()

    def test_become_outside_actor(self, rt4):
        errors = []

        def tsk(ctx):
            try:
                ctx.become(Counter)
            except BehaviorError:
                errors.append(True)

        rt4.load_behaviors(tasks={"tsk": tsk})
        rt4.spawn_task("tsk", at=0)
        rt4.run()
        assert errors == [True]
